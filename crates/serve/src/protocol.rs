//! The wire protocol: one JSON request per line in, one JSON response
//! per line out.
//!
//! Requests are JSON objects with a `kind` member naming one of the
//! request kinds (see [`REQUEST_KINDS`]); responses are JSON objects with
//! an `ok` boolean. A failed request yields
//! `{"ok":false,"error":{"kind":..,"message":..}}` with a typed error
//! kind — malformed input of any sort is answered, never fatal. Blank
//! lines are ignored.
//!
//! ```text
//! → {"kind":"query","structure":"circ02","dims":[[30,40],[25,25],...]}
//! ← {"ok":true,"kind":"query","structure":"circ02","id":13}
//! ```
//!
//! # Request ids and pipelining
//!
//! A request may carry an `id` member (a non-negative integer). The
//! response to a tagged request echoes it as `req` — `id` is already
//! taken by query answers — which lets a client keep many requests in
//! flight on one connection and match responses out of order:
//!
//! ```text
//! → {"id":7,"kind":"query","structure":"circ02","dims":[[30,40],...]}
//! ← {"ok":true,"kind":"query","req":7,"structure":"circ02","id":13}
//! ```
//!
//! Per connection, ids must be strictly increasing (the natural shape of
//! a pipelining client, and O(1) for the server to enforce); once a
//! connection has sent a tagged request, every later request must be
//! tagged too. Violations are answered with a typed `bad_id` error. The
//! full framing contract lives in `crates/serve/PROTOCOL.md`.

use mps_geom::{Coord, Dims, DimsError};
use serde::{Map, Serialize, Value};

/// Every request kind the server understands, as spelled on the wire.
pub const REQUEST_KINDS: [&str; 9] = [
    "query",
    "batch_query",
    "instantiate",
    "reload",
    "stats",
    "list_structures",
    "metrics",
    "trace",
    "refine",
];

/// A parsed, not-yet-validated client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Look up the placement id covering one dimension vector.
    Query {
        /// Registry name of the target structure.
        structure: String,
        /// One `(w, h)` pair per block. Decoded leniently — values are
        /// validated against the addressed structure by the server.
        dims: Dims,
    },
    /// Look up a whole stream of dimension vectors in one round trip.
    BatchQuery {
        /// Registry name of the target structure.
        structure: String,
        /// The dimension vectors, answered element-wise.
        dims_list: Vec<Dims>,
        /// The request carried `"encoding":"bin"`: answer with a binary
        /// frame (see [`crate::frame`]) instead of a JSON line.
        binary: bool,
    },
    /// Materialize the placement (block coordinates) for one vector,
    /// falling back to the backup packing in uncovered space.
    Instantiate {
        /// Registry name of the target structure.
        structure: String,
        /// One `(w, h)` pair per block.
        dims: Dims,
    },
    /// Rescan the registry's artifact directory and hot-swap the served
    /// set; the answer cache is invalidated all-or-nothing on success.
    Reload,
    /// Server and per-structure counters.
    Stats,
    /// Sorted names of every served structure.
    ListStructures,
    /// The full telemetry snapshot: per-stage latency histograms per
    /// lane, per-structure query-dimension heatmaps, cache/pool/
    /// connection gauges.
    Metrics,
    /// Drain the slow-request ring: the N worst requests since the last
    /// `trace`, each with its per-stage time breakdown.
    Trace,
    /// Traffic-adaptive refinement: trigger one synchronous refinement
    /// pass now (`"action":"run"`, the default) or report the
    /// refinement counters without running anything
    /// (`"action":"status"`). Works whether or not the background
    /// refinement worker is enabled.
    Refine {
        /// Run a pass (`true`) or only report status (`false`).
        run: bool,
        /// Restrict the pass to this structure instead of letting the
        /// heat-based candidate selection pick one.
        structure: Option<String>,
    },
}

impl Request {
    /// The request's kind as spelled on the wire.
    #[must_use]
    pub fn kind_str(&self) -> &'static str {
        match self {
            Request::Query { .. } => "query",
            Request::BatchQuery { .. } => "batch_query",
            Request::Instantiate { .. } => "instantiate",
            Request::Reload => "reload",
            Request::Stats => "stats",
            Request::ListStructures => "list_structures",
            Request::Metrics => "metrics",
            Request::Trace => "trace",
            Request::Refine { .. } => "refine",
        }
    }

    /// The structure the request addresses, when it addresses one.
    #[must_use]
    pub fn structure_name(&self) -> Option<&str> {
        match self {
            Request::Query { structure, .. }
            | Request::BatchQuery { structure, .. }
            | Request::Instantiate { structure, .. } => Some(structure),
            Request::Refine { structure, .. } => structure.as_deref(),
            _ => None,
        }
    }
}

/// Typed reason a request was refused. The wire spelling is
/// [`ErrorKind::as_str`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line is not syntactically valid JSON.
    Parse,
    /// Valid JSON that does not follow the request schema (not an
    /// object, missing/ill-typed members, malformed dims pairs).
    Protocol,
    /// The `kind` member names no known request kind.
    UnknownKind,
    /// The addressed structure is not in the registry.
    UnknownStructure,
    /// A dimension vector's length differs from the structure's block
    /// count.
    BadArity,
    /// A dimension value escapes the structure's designer bounds (only
    /// instantiation rejects this — the fallback packing guarantees
    /// legality only inside the bounds; queries answer `id: null`).
    OutOfBounds,
    /// The request id violates the tagged-framing contract: not a
    /// non-negative integer, not strictly increasing on its connection,
    /// or missing after the connection went tagged.
    BadId,
    /// The server is at its connection ceiling
    /// ([`max_connections`](crate::ServerConfig::max_connections)); the
    /// connection is answered with this single line and closed.
    Overloaded,
    /// A handler failed internally; the server keeps serving.
    Internal,
}

impl ErrorKind {
    /// The wire spelling of this error kind.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Protocol => "protocol",
            ErrorKind::UnknownKind => "unknown_kind",
            ErrorKind::UnknownStructure => "unknown_structure",
            ErrorKind::BadArity => "bad_arity",
            ErrorKind::OutOfBounds => "out_of_bounds",
            ErrorKind::BadId => "bad_id",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A typed request failure, rendered as the `error` member of a
/// `{"ok":false}` response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// What class of failure this is.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    /// Creates a typed request failure.
    #[must_use]
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

/// A parsed request line: the optional pipelining tag plus the request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// The request id, when the line was tagged.
    pub id: Option<u64>,
    /// The request itself.
    pub request: Request,
}

/// A failed [`parse_envelope`]: the typed refusal plus the request id,
/// when one could still be recovered from the line (so the error
/// response can be tagged and a pipelining client can correlate it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvelopeError {
    /// The request id, when the line carried a well-formed one.
    pub id: Option<u64>,
    /// The typed refusal.
    pub error: RequestError,
}

/// Parses one request line. Schema errors come back typed; nothing here
/// panics on any input (the underlying parser is depth-capped).
///
/// # Errors
///
/// Returns a [`RequestError`] of kind `parse`, `protocol`, `bad_id` or
/// `unknown_kind` (structure-dependent validation — unknown names, arity,
/// bounds — happens later, in the server, where the registry is known).
/// Any request id is parsed and discarded; use [`parse_envelope`] where
/// the tag matters.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    parse_envelope(line)
        .map(|envelope| envelope.request)
        .map_err(|e| e.error)
}

/// Parses one request line including its pipelining tag. The `id`
/// member, when present, must be a non-negative integer; connection-level
/// rules (strictly increasing, sticky tagged mode) are the server's job.
///
/// # Errors
///
/// Returns an [`EnvelopeError`] whose `error` is typed `parse`,
/// `protocol`, `bad_id` or `unknown_kind`, and whose `id` is the
/// request's tag when one was well-formed (schema errors on tagged lines
/// stay correlatable).
pub fn parse_envelope(line: &str) -> Result<Envelope, EnvelopeError> {
    let untagged = |error| EnvelopeError { id: None, error };
    let value = serde_json::parse(line)
        .map_err(|e| untagged(RequestError::new(ErrorKind::Parse, e.to_string())))?;
    let Some(obj) = value.as_object() else {
        return Err(untagged(RequestError::new(
            ErrorKind::Protocol,
            format!("request must be a JSON object, found {}", value.kind()),
        )));
    };
    let id = match obj.get("id") {
        None => None,
        Some(raw) => match raw.as_u64() {
            Some(id) => Some(id),
            None => {
                return Err(untagged(RequestError::new(
                    ErrorKind::BadId,
                    format!("`id` must be a non-negative integer, found {}", raw.kind()),
                )));
            }
        },
    };
    match parse_request_body(obj) {
        Ok(request) => Ok(Envelope { id, request }),
        Err(error) => Err(EnvelopeError { id, error }),
    }
}

/// Decodes the request out of an already-parsed line object (the `id`
/// member, if any, has been handled by the caller).
fn parse_request_body(obj: &Map) -> Result<Request, RequestError> {
    let kind = obj
        .get("kind")
        .ok_or_else(|| RequestError::new(ErrorKind::Protocol, "missing `kind` member"))?;
    let Some(kind) = kind.as_str() else {
        return Err(RequestError::new(
            ErrorKind::Protocol,
            format!("`kind` must be a string, found {}", kind.kind()),
        ));
    };
    match kind {
        "query" => Ok(Request::Query {
            structure: required_string(obj, "structure")?,
            dims: dims_vector(obj.get("dims"), "dims")?,
        }),
        "batch_query" => {
            let structure = required_string(obj, "structure")?;
            let raw = obj.get("dims_list").ok_or_else(|| {
                RequestError::new(ErrorKind::Protocol, "missing `dims_list` member")
            })?;
            let Some(items) = raw.as_array() else {
                return Err(RequestError::new(
                    ErrorKind::Protocol,
                    format!("`dims_list` must be an array, found {}", raw.kind()),
                ));
            };
            let dims_list = items
                .iter()
                .enumerate()
                .map(|(i, item)| dims_vector(Some(item), &format!("dims_list[{i}]")))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::BatchQuery {
                structure,
                dims_list,
                binary: binary_encoding(obj)?,
            })
        }
        "instantiate" => Ok(Request::Instantiate {
            structure: required_string(obj, "structure")?,
            dims: dims_vector(obj.get("dims"), "dims")?,
        }),
        "reload" => Ok(Request::Reload),
        "stats" => Ok(Request::Stats),
        "list_structures" => Ok(Request::ListStructures),
        "metrics" => Ok(Request::Metrics),
        "trace" => Ok(Request::Trace),
        "refine" => {
            let run = match obj.get("action") {
                None => true,
                Some(action) => match action.as_str() {
                    Some("run") => true,
                    Some("status") => false,
                    Some(other) => {
                        return Err(RequestError::new(
                            ErrorKind::Protocol,
                            format!("unknown refine `action` `{other}` (this server speaks run, status)"),
                        ));
                    }
                    None => {
                        return Err(RequestError::new(
                            ErrorKind::Protocol,
                            format!("`action` must be a string, found {}", action.kind()),
                        ));
                    }
                },
            };
            let structure = match obj.get("structure") {
                None => None,
                Some(value) => Some(value.as_str().map(str::to_owned).ok_or_else(|| {
                    RequestError::new(
                        ErrorKind::Protocol,
                        format!("`structure` must be a string, found {}", value.kind()),
                    )
                })?),
            };
            Ok(Request::Refine { run, structure })
        }
        other => Err(RequestError::new(
            ErrorKind::UnknownKind,
            format!(
                "unknown request kind `{other}` (this server speaks {})",
                REQUEST_KINDS.join(", ")
            ),
        )),
    }
}

/// Decodes the optional `encoding` member: absent or `"json"` keeps the
/// JSON response line, `"bin"` opts this one request into a binary
/// answer frame. Anything else is a typed protocol error.
fn binary_encoding(obj: &Map) -> Result<bool, RequestError> {
    match obj.get("encoding") {
        None => Ok(false),
        Some(value) => match value.as_str() {
            Some("json") => Ok(false),
            Some("bin") => Ok(true),
            Some(other) => Err(RequestError::new(
                ErrorKind::Protocol,
                format!("unknown `encoding` `{other}` (this server speaks json, bin)"),
            )),
            None => Err(RequestError::new(
                ErrorKind::Protocol,
                format!("`encoding` must be a string, found {}", value.kind()),
            )),
        },
    }
}

fn required_string(obj: &Map, member: &str) -> Result<String, RequestError> {
    let value = obj.get(member).ok_or_else(|| {
        RequestError::new(ErrorKind::Protocol, format!("missing `{member}` member"))
    })?;
    value.as_str().map(str::to_owned).ok_or_else(|| {
        RequestError::new(
            ErrorKind::Protocol,
            format!("`{member}` must be a string, found {}", value.kind()),
        )
    })
}

/// Decodes a `[[w, h], ...]` dimension vector into a validated
/// [`Dims`]. Structure-independent validation happens right here at the
/// trust boundary — an empty vector is a typed `bad_arity`, a zero or
/// negative width/height a typed `out_of_bounds` — so no unchecked
/// wire data ever reaches a `Dims`. Structure-*specific* checks (arity
/// against the block count, designer bounds) still happen in the
/// server, where the addressed structure is known.
fn dims_vector(value: Option<&Value>, member: &str) -> Result<Dims, RequestError> {
    let value = value.ok_or_else(|| {
        RequestError::new(ErrorKind::Protocol, format!("missing `{member}` member"))
    })?;
    let Some(pairs) = value.as_array() else {
        return Err(RequestError::new(
            ErrorKind::Protocol,
            format!(
                "`{member}` must be an array of [w, h] pairs, found {}",
                value.kind()
            ),
        ));
    };
    pairs
        .iter()
        .enumerate()
        .map(|(i, pair)| {
            let Some(wh) = pair.as_array() else {
                return Err(RequestError::new(
                    ErrorKind::Protocol,
                    format!(
                        "`{member}[{i}]` must be a [w, h] pair, found {}",
                        pair.kind()
                    ),
                ));
            };
            if wh.len() != 2 {
                return Err(RequestError::new(
                    ErrorKind::Protocol,
                    format!(
                        "`{member}[{i}]` must hold exactly 2 values, found {}",
                        wh.len()
                    ),
                ));
            }
            let coord = |v: &Value, axis: &str| {
                v.as_i64().ok_or_else(|| {
                    RequestError::new(
                        ErrorKind::Protocol,
                        format!(
                            "`{member}[{i}]` {axis} must be an integer, found {}",
                            v.kind()
                        ),
                    )
                })
            };
            Ok((coord(&wh[0], "width")?, coord(&wh[1], "height")?))
        })
        .collect::<Result<Vec<(Coord, Coord)>, RequestError>>()
        .and_then(|pairs| {
            Dims::new(pairs).map_err(|e| match e {
                DimsError::Empty => RequestError::new(
                    ErrorKind::BadArity,
                    format!("`{member}` holds no [w, h] pairs; no structure covers 0 blocks"),
                ),
                DimsError::NonPositive {
                    block,
                    width,
                    height,
                } => RequestError::new(
                    ErrorKind::OutOfBounds,
                    format!(
                        "`{member}[{block}]` dimensions ({width}, {height}) are not positive \
                         sizes; the smallest legal value is 1"
                    ),
                ),
            })
        })
}

/// Renders a `{"ok":false,"error":{...}}` response line (without the
/// trailing newline).
#[must_use]
pub fn error_response(error: &RequestError) -> String {
    tagged_error_response(None, error)
}

/// Renders a `{"ok":false,...}` response line, echoing the request id as
/// `req` when the failed request carried an accepted one.
#[must_use]
pub fn tagged_error_response(id: Option<u64>, error: &RequestError) -> String {
    let mut inner = Map::new();
    inner.insert("kind", Value::String(error.kind.as_str().to_owned()));
    inner.insert("message", Value::String(error.message.clone()));
    let mut map = Map::new();
    map.insert("ok", Value::Bool(false));
    if let Some(id) = id {
        map.insert("req", id.to_value());
    }
    map.insert("error", Value::Object(inner));
    render(map)
}

/// Starts a `{"ok":true,"kind":...}` response object for `kind`.
#[must_use]
pub fn ok_header(kind: &str) -> Map {
    let mut map = Map::new();
    map.insert("ok", Value::Bool(true));
    map.insert("kind", Value::String(kind.to_owned()));
    map
}

/// Renders a response object to its wire line (no trailing newline).
#[must_use]
pub fn render(map: Map) -> String {
    serde_json::to_string(&Value::Object(map)).expect("value trees always serialize")
}

/// An optional placement id as its wire value (`id` or `null`).
#[must_use]
pub fn id_value(id: Option<mps_core::PlacementId>) -> Value {
    match id {
        Some(id) => id.0.to_value(),
        None => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_request_kind() {
        assert_eq!(
            parse_request(r#"{"kind":"query","structure":"s","dims":[[1,2],[3,4]]}"#).unwrap(),
            Request::Query {
                structure: "s".into(),
                dims: Dims::from_vec_unchecked(vec![(1, 2), (3, 4)]),
            }
        );
        assert_eq!(
            parse_request(
                r#"{"kind":"batch_query","structure":"s","dims_list":[[[1,2]],[[3,4]]]}"#
            )
            .unwrap(),
            Request::BatchQuery {
                structure: "s".into(),
                dims_list: vec![
                    Dims::from_vec_unchecked(vec![(1, 2)]),
                    Dims::from_vec_unchecked(vec![(3, 4)])
                ],
                binary: false,
            }
        );
        assert_eq!(
            parse_request(r#"{"kind":"instantiate","structure":"s","dims":[[5,7]]}"#).unwrap(),
            Request::Instantiate {
                structure: "s".into(),
                dims: Dims::from_vec_unchecked(vec![(5, 7)]),
            }
        );
        assert_eq!(
            parse_request(r#"{"kind":"stats"}"#).unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request(r#"{"kind":"reload"}"#).unwrap(),
            Request::Reload
        );
        assert_eq!(
            parse_request(r#"{"kind":"list_structures"}"#).unwrap(),
            Request::ListStructures
        );
        assert_eq!(
            parse_request(r#"{"kind":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request(r#"{"kind":"trace"}"#).unwrap(),
            Request::Trace
        );
        assert_eq!(
            parse_request(r#"{"kind":"refine"}"#).unwrap(),
            Request::Refine {
                run: true,
                structure: None,
            }
        );
        assert_eq!(
            parse_request(r#"{"kind":"refine","action":"status"}"#).unwrap(),
            Request::Refine {
                run: false,
                structure: None,
            }
        );
        assert_eq!(
            parse_request(r#"{"kind":"refine","action":"run","structure":"circ01"}"#).unwrap(),
            Request::Refine {
                run: true,
                structure: Some("circ01".into()),
            }
        );
    }

    #[test]
    fn malformed_refine_requests_are_typed_protocol_errors() {
        let kind_of = |line: &str| parse_request(line).unwrap_err().kind;
        assert_eq!(
            kind_of(r#"{"kind":"refine","action":"now"}"#),
            ErrorKind::Protocol
        );
        assert_eq!(
            kind_of(r#"{"kind":"refine","action":7}"#),
            ErrorKind::Protocol
        );
        assert_eq!(
            kind_of(r#"{"kind":"refine","structure":[1]}"#),
            ErrorKind::Protocol
        );
        // The optional structure surfaces through structure_name.
        let req = parse_request(r#"{"kind":"refine","structure":"s"}"#).unwrap();
        assert_eq!(req.structure_name(), Some("s"));
    }

    #[test]
    fn kind_str_round_trips_through_the_parser() {
        // Every wire spelling parses to a request whose `kind_str` is
        // that spelling (body members filled with minimal valid values).
        for kind in REQUEST_KINDS {
            let body = match kind {
                "query" | "instantiate" => {
                    format!(r#"{{"kind":"{kind}","structure":"s","dims":[[1,2]]}}"#)
                }
                "batch_query" => {
                    format!(r#"{{"kind":"{kind}","structure":"s","dims_list":[[[1,2]]]}}"#)
                }
                // `refine` needs no members; the bare form is "run now".
                _ => format!(r#"{{"kind":"{kind}"}}"#),
            };
            let request = parse_request(&body).unwrap();
            assert_eq!(request.kind_str(), kind);
        }
    }

    #[test]
    fn envelopes_carry_request_ids() {
        assert_eq!(
            parse_envelope(r#"{"id":7,"kind":"stats"}"#).unwrap(),
            Envelope {
                id: Some(7),
                request: Request::Stats,
            }
        );
        assert_eq!(
            parse_envelope(r#"{"kind":"stats"}"#).unwrap().id,
            None,
            "untagged lines stay untagged"
        );
        // A schema error on a tagged line keeps the tag, so the error
        // response stays correlatable for a pipelining client.
        let err = parse_envelope(r#"{"id":9,"kind":"query"}"#).unwrap_err();
        assert_eq!(err.id, Some(9));
        assert_eq!(err.error.kind, ErrorKind::Protocol);
        // Ill-formed ids are bad_id, untagged (the tag is unusable).
        for line in [
            r#"{"id":"seven","kind":"stats"}"#,
            r#"{"id":1.5,"kind":"stats"}"#,
            r#"{"id":-3,"kind":"stats"}"#,
            r#"{"id":null,"kind":"stats"}"#,
            r#"{"id":true,"kind":"stats"}"#,
            r#"{"id":[7],"kind":"stats"}"#,
        ] {
            let err = parse_envelope(line).unwrap_err();
            assert_eq!(err.error.kind, ErrorKind::BadId, "{line}");
            assert_eq!(err.id, None, "{line}");
        }
    }

    #[test]
    fn tagged_error_lines_echo_the_request_id() {
        let line = tagged_error_response(
            Some(42),
            &RequestError::new(ErrorKind::UnknownStructure, "no such structure"),
        );
        let value = serde_json::parse(&line).unwrap();
        assert_eq!(value.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(value.get("req").and_then(Value::as_u64), Some(42));
    }

    #[test]
    fn typed_errors_for_malformed_requests() {
        let kind_of = |line: &str| parse_request(line).unwrap_err().kind;
        assert_eq!(kind_of("{\"kind\":"), ErrorKind::Parse);
        assert_eq!(kind_of("[1,2]"), ErrorKind::Protocol);
        assert_eq!(kind_of("{}"), ErrorKind::Protocol);
        assert_eq!(kind_of(r#"{"kind":7}"#), ErrorKind::Protocol);
        assert_eq!(kind_of(r#"{"kind":"frobnicate"}"#), ErrorKind::UnknownKind);
        assert_eq!(
            kind_of(r#"{"kind":"query","dims":[[1,2]]}"#),
            ErrorKind::Protocol
        );
        assert_eq!(
            kind_of(r#"{"kind":"query","structure":"s","dims":[[1,2,3]]}"#),
            ErrorKind::Protocol
        );
        assert_eq!(
            kind_of(r#"{"kind":"query","structure":"s","dims":[["a",2]]}"#),
            ErrorKind::Protocol
        );
        assert_eq!(
            kind_of(r#"{"kind":"batch_query","structure":"s","dims_list":[7]}"#),
            ErrorKind::Protocol
        );
    }

    /// Regression: wire dims used to flow through
    /// `Dims::from_vec_unchecked`, so empty and non-positive vectors
    /// reached the query engine unvalidated. The decoder now routes
    /// through the checked constructor and answers with the existing
    /// typed errors.
    #[test]
    fn degenerate_dims_are_refused_at_the_trust_boundary() {
        let err = |line: &str| parse_request(line).unwrap_err();
        let empty = err(r#"{"kind":"query","structure":"s","dims":[]}"#);
        assert_eq!(empty.kind, ErrorKind::BadArity);
        assert!(empty.message.contains("`dims`"), "{empty}");
        for (line, member) in [
            (
                r#"{"kind":"query","structure":"s","dims":[[1,2],[0,5]]}"#,
                "`dims[1]`",
            ),
            (
                r#"{"kind":"instantiate","structure":"s","dims":[[-5,7]]}"#,
                "`dims[0]`",
            ),
            (
                r#"{"kind":"batch_query","structure":"s","dims_list":[[[1,1]],[[3,-4]]]}"#,
                "`dims_list[1][0]`",
            ),
        ] {
            let e = err(line);
            assert_eq!(e.kind, ErrorKind::OutOfBounds, "{line}");
            assert!(e.message.contains(member), "{line}: {e}");
        }
        let empty_element = err(r#"{"kind":"batch_query","structure":"s","dims_list":[[]]}"#);
        assert_eq!(empty_element.kind, ErrorKind::BadArity);
        // Extreme-but-positive values still parse: designer-bounds
        // rejection stays the server's job, where the structure is known.
        assert!(parse_request(&format!(
            r#"{{"kind":"query","structure":"s","dims":[[1,{}]]}}"#,
            i64::MAX
        ))
        .is_ok());
    }

    #[test]
    fn encoding_member_is_parsed_and_validated() {
        let batch = |suffix: &str| {
            parse_request(&format!(
                r#"{{"kind":"batch_query","structure":"s","dims_list":[[[1,2]]]{suffix}}}"#
            ))
        };
        let binary_of = |req: Request| match req {
            Request::BatchQuery { binary, .. } => binary,
            other => panic!("expected a batch, got {other:?}"),
        };
        assert!(!binary_of(batch("").unwrap()), "absent defaults to JSON");
        assert!(!binary_of(batch(r#","encoding":"json""#).unwrap()));
        assert!(binary_of(batch(r#","encoding":"bin""#).unwrap()));
        let unknown = batch(r#","encoding":"protobuf""#).unwrap_err();
        assert_eq!(unknown.kind, ErrorKind::Protocol);
        assert!(unknown.message.contains("protobuf"), "{unknown}");
        let ill_typed = batch(r#","encoding":7"#).unwrap_err();
        assert_eq!(ill_typed.kind, ErrorKind::Protocol);
    }

    #[test]
    fn error_lines_are_well_formed() {
        let line = error_response(&RequestError::new(ErrorKind::BadArity, "want 5, got 3"));
        let value = serde_json::parse(&line).unwrap();
        assert_eq!(value.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            value
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Value::as_str),
            Some("bad_arity")
        );
    }
}
