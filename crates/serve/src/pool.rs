//! A small fixed-size worker pool for request-side parallelism.
//!
//! Instantiation (and large batch queries) fan out over these workers;
//! the pool is deliberately boring: long-lived named threads, one shared
//! job channel, panic isolation per job (a panicking handler yields a
//! typed error to one client instead of killing the server), and a
//! draining `Drop`.

use crate::lock_recover;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads executing submitted jobs.
#[derive(Debug)]
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (clamped to at least 1).
    ///
    /// # Panics
    ///
    /// Panics if the operating system refuses to spawn a thread.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self::with_thread_init(threads, |_| {})
    }

    /// Spawns `threads` workers (clamped to at least 1), calling `init`
    /// with the worker's index on each worker thread before it starts
    /// taking jobs — the server uses this to bind each worker to its
    /// telemetry lane.
    ///
    /// # Panics
    ///
    /// Panics if the operating system refuses to spawn a thread.
    #[must_use]
    pub fn with_thread_init(threads: usize, init: impl Fn(usize) + Send + Sync + 'static) -> Self {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let init = Arc::new(init);
        let workers = (0..threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let init = Arc::clone(&init);
                std::thread::Builder::new()
                    .name(format!("mps-serve-worker-{i}"))
                    .spawn(move || {
                        init(i);
                        worker_loop(&rx);
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits a fire-and-forget job (the pipelined server uses this
    /// directly: the job itself writes its response and signals its
    /// connection's drain counter).
    pub(crate) fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool alive while not dropped")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Runs one job on the pool and blocks for its result.
    ///
    /// # Errors
    ///
    /// Returns `Err` when the job panicked; the worker survives.
    pub fn run<R, F>(&self, job: F) -> Result<R, PoolError>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let (tx, rx) = channel();
        self.execute(move || {
            let result = catch_unwind(AssertUnwindSafe(job));
            let _ = tx.send(result);
        });
        rx.recv().map_err(|_| PoolError)?.map_err(|_| PoolError)
    }

    /// Maps `f` over `items` on the pool, preserving input order in the
    /// result. Blocks until every item is done.
    ///
    /// # Errors
    ///
    /// Returns `Err` when any job panicked (after every job finished);
    /// the workers survive.
    pub fn map_in_order<T, R, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>, PoolError>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let f = Arc::new(f);
        let (tx, rx) = channel();
        for (i, item) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let tx = tx.clone();
            self.execute(move || {
                let result = catch_unwind(AssertUnwindSafe(|| f(item)));
                let _ = tx.send((i, result));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut panicked = false;
        for _ in 0..n {
            let (i, result) = rx.recv().map_err(|_| PoolError)?;
            match result {
                Ok(r) => slots[i] = Some(r),
                Err(_) => panicked = true,
            }
        }
        if panicked {
            return Err(PoolError);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every index answered"))
            .collect())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker loop; join so no job is
        // still running when the pool's owner tears down.
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = {
            // Poison recovery: a panic between lock and recv (there is
            // no code there today, but the channel stays valid at any
            // interleaving) must not stop every other worker.
            let guard = lock_recover(rx);
            guard.recv()
        };
        match job {
            // The last line of panic isolation: `run`/`map_in_order`
            // catch inside their own jobs, but raw `execute` jobs (the
            // pipelined server's) must not be able to kill a worker.
            Ok(job) => drop(catch_unwind(AssertUnwindSafe(job))),
            Err(_) => break, // pool dropped
        }
    }
}

/// A job submitted to the pool panicked (the worker itself survived).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolError;

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("a pool job panicked")
    }
}

impl std::error::Error for PoolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_and_survives_panics() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.workers(), 2);
        assert_eq!(pool.run(|| 21 * 2).unwrap(), 42);
        assert_eq!(pool.run(|| -> i32 { panic!("boom") }), Err(PoolError));
        // The worker that caught the panic still serves.
        assert_eq!(pool.run(|| "alive").unwrap(), "alive");
    }

    #[test]
    fn map_in_order_preserves_order() {
        let pool = WorkerPool::new(3);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.map_in_order(items, |x| x * x).unwrap();
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
        assert!(pool
            .map_in_order(Vec::<usize>::new(), |x| x)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn map_in_order_reports_panics_without_killing_workers() {
        let pool = WorkerPool::new(2);
        let result = pool.map_in_order(vec![1usize, 2, 3], |x| {
            assert!(x != 2, "poisoned item");
            x
        });
        assert_eq!(result, Err(PoolError));
        assert_eq!(pool.run(|| 7).unwrap(), 7);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.run(|| 1).unwrap(), 1);
    }
}
