//! Shared-nothing connection shards: the event-loop engine behind
//! [`Server::serve_tcp`](crate::Server::serve_tcp).
//!
//! Accepted connections are handed round-robin to a fixed pool of shard
//! threads; each shard owns its subset outright (no connection is ever
//! touched by two shards) and pumps all of them through one
//! non-blocking readiness loop over a [`netpoll::Poller`].
//! Per-connection buffered read/write state replaces both the
//! thread-per-connection stack and the per-response writer lock of the
//! pipelined pump: partial request lines accumulate in a [`RecvBuffer`]
//! until their newline arrives, and responses queue in a [`SendBuffer`]
//! that drains as far as the socket accepts and parks the rest behind
//! write-readiness. Cheap requests are answered inline on the shard
//! thread; heavy tagged requests leave through
//! [`Server::submit_heavy`] and come back as completions through the
//! shard's inbox plus a [`Poller::wake`] — the shard thread itself
//! never blocks on anything but the poller.
//!
//! Ordering: untagged requests (and framing errors) are answered in
//! arrival order because they never leave the shard thread; tagged
//! heavy responses come back out of order, matched by `req`, exactly as
//! `serve_pipelined` already promises. A fanned-out batch is still one
//! request and one response — its chunks are reassembled in request
//! order before the line is delivered.

use crate::lock_recover;
use crate::protocol::{ErrorKind, RequestError};
use crate::server::{
    ns_since, Admitted, ConnState, OpenConnGuard, Reply, ReqCtx, ResponseSink, Server,
};
use crate::telemetry::Stage;
use netpoll::{raw_fd, Interest, Poller, WAKE_TOKEN};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A request line longer than this without a newline closes the
/// connection: nothing in the protocol is remotely this large, so the
/// peer is broken or hostile, and the alternative is unbounded
/// buffering.
const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Stack scratch for draining a readable socket.
const READ_CHUNK: usize = 16 * 1024;

/// The fixed pool of shard event loops serving one listener.
pub(crate) struct ShardSet {
    shards: Vec<Arc<Shard>>,
    next: AtomicUsize,
}

impl ShardSet {
    /// Spawns `count` shard threads (clamped to at least 1), each with
    /// its own poller and inbox.
    ///
    /// # Errors
    ///
    /// Fails when the platform has no readiness backend (the caller
    /// falls back to thread-per-connection) or a thread cannot spawn.
    pub(crate) fn spawn(server: &Arc<Server>, count: usize) -> io::Result<ShardSet> {
        let count = count.max(1);
        let mut shards = Vec::with_capacity(count);
        for i in 0..count {
            let shard = Arc::new(Shard {
                poller: Poller::new()?,
                inbox: Mutex::new(Inbox::default()),
            });
            let server = Arc::clone(server);
            let loop_shard = Arc::clone(&shard);
            std::thread::Builder::new()
                .name(format!("mps-serve-shard-{i}"))
                .spawn(move || {
                    // Lane 0 is the inline lane; shard lanes follow.
                    server.telemetry().bind_lane(1 + i);
                    shard_loop(&server, &loop_shard);
                })?;
            shards.push(shard);
        }
        Ok(ShardSet {
            shards,
            next: AtomicUsize::new(0),
        })
    }

    /// Hands one accepted connection (and its open-gauge guard) to the
    /// next shard round-robin and wakes that shard's loop.
    pub(crate) fn assign(&self, stream: TcpStream, guard: OpenConnGuard) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let shard = &self.shards[i];
        lock_recover(&shard.inbox).joins.push((stream, guard));
        let _ = shard.poller.wake();
    }
}

/// One shard: a poller the loop blocks on, and the inbox other threads
/// feed (new connections from the acceptor, completions from pool
/// workers), always paired with a [`Poller::wake`].
struct Shard {
    poller: Poller,
    inbox: Mutex<Inbox>,
}

#[derive(Default)]
struct Inbox {
    /// Connections accepted but not yet owned by the shard loop.
    joins: Vec<(TcpStream, OpenConnGuard)>,
    /// Rendered replies (JSON lines or binary frames) from pooled heavy
    /// requests, by token.
    completions: Vec<(usize, Reply)>,
}

/// What [`Conn::finalize`] decided about the connection's future.
#[derive(PartialEq, Eq)]
enum ConnFate {
    Alive,
    Closed,
}

/// One connection as a shard owns it: the socket, the protocol framing
/// state, both direction buffers, and the bookkeeping that decides when
/// it can finally close.
struct Conn {
    stream: TcpStream,
    state: ConnState,
    recv: RecvBuffer,
    out: SendBuffer,
    /// Heavy responses submitted to the pool but not yet delivered.
    pending: usize,
    /// The read side is finished (EOF, read error, or oversized line).
    eof: bool,
    /// The interest currently registered with the poller, if any.
    registered: Option<Interest>,
    /// Ties the open-connection gauge to this struct's lifetime.
    _guard: OpenConnGuard,
}

impl Conn {
    fn new(stream: TcpStream, guard: OpenConnGuard) -> Conn {
        Conn {
            stream,
            state: ConnState::default(),
            recv: RecvBuffer::default(),
            out: SendBuffer::default(),
            pending: 0,
            eof: false,
            registered: None,
            _guard: guard,
        }
    }

    /// Reads until the socket would block (or ends), answering every
    /// complete line as it appears.
    fn drain_socket(&mut self, server: &Arc<Server>, shard: &Arc<Shard>, token: usize) {
        let mut scratch = [0u8; READ_CHUNK];
        // One recv-stage sample per drain: the summed time the read()
        // syscalls themselves took, not the inline request handling
        // between them (that is parse/dispatch time, counted there).
        let telemetry_on = server.telemetry().enabled();
        let mut read_ns: u64 = 0;
        let mut did_read = false;
        while !self.eof {
            let t = telemetry_on.then(Instant::now);
            let outcome = self.stream.read(&mut scratch);
            if let Some(t) = t {
                read_ns = read_ns.saturating_add(ns_since(t));
                did_read = true;
            }
            match outcome {
                Ok(0) => self.eof = true,
                Ok(n) => {
                    self.recv.extend(&scratch[..n]);
                    while let Some(line) = self.recv.next_line() {
                        self.process_line(server, shard, token, &line);
                    }
                    if self.recv.len() > MAX_LINE_BYTES {
                        // This refusal never reaches admit() — the
                        // buffered bytes are dropped unparsed — so the
                        // server counts it and records its parse span
                        // explicitly, keeping refused traffic visible
                        // in `stats`/`metrics` like every other error.
                        self.out
                            .push_line(&server.refuse_preadmission(&RequestError::new(
                                ErrorKind::Protocol,
                                format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                            )));
                        self.recv.clear();
                        self.eof = true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => self.eof = true,
            }
        }
        if did_read {
            server.telemetry().record(Stage::Recv, read_ns);
        }
        if self.eof {
            // A final line without a trailing newline still gets its
            // answer, matching the BufRead::lines-based pumps.
            if let Some(line) = self.recv.take_trailing() {
                self.process_line(server, shard, token, &line);
            }
        }
    }

    /// Admits and answers one request line: inline on this shard thread
    /// for everything cheap (and for untagged requests, whose responses
    /// must stay in arrival order), through the worker pool for heavy
    /// tagged work.
    fn process_line(&mut self, server: &Arc<Server>, shard: &Arc<Shard>, token: usize, line: &str) {
        match server.admit(&self.state, line) {
            Admitted::Blank => {}
            Admitted::Reply(response) => self.out.push_line(&response),
            Admitted::Run {
                id: Some(id),
                request,
                parse_ns,
            } if server.is_heavy(&request) => {
                self.pending += 1;
                let shard = Arc::clone(shard);
                let sink: ResponseSink = Arc::new(move |reply: Reply| {
                    lock_recover(&shard.inbox).completions.push((token, reply));
                    let _ = shard.poller.wake();
                });
                server.submit_heavy(id, request, parse_ns, sink);
            }
            Admitted::Run {
                id,
                request,
                parse_ns,
            } => {
                let reply = server.complete(id, request, ReqCtx::inline(parse_ns));
                self.out.push_reply(&reply);
            }
        }
    }

    /// Settles the connection after any activity: flushes as much output
    /// as the socket accepts, decides whether the connection is done,
    /// and keeps the poller registration in sync with what the
    /// connection actually waits for. A connection with nothing to read
    /// (EOF) and nothing to write but responses still in the pool is
    /// deregistered entirely — the completion wake-up is its only next
    /// event, and a level-triggered EOF socket would otherwise spin the
    /// loop hot.
    fn finalize(&mut self, server: &Arc<Server>, poller: &Poller, token: usize) -> ConnFate {
        let had_output = !self.out.is_empty();
        let t = (had_output && server.telemetry().enabled()).then(Instant::now);
        let flushed = self.out.flush_to(&mut self.stream);
        if let Some(t) = t {
            server.telemetry().record(Stage::Write, ns_since(t));
        }
        if flushed.is_err() {
            return ConnFate::Closed;
        }
        if self.eof && self.out.is_empty() && self.pending == 0 {
            return ConnFate::Closed;
        }
        let desired = match (!self.eof, !self.out.is_empty()) {
            (true, true) => Some(Interest::BOTH),
            (true, false) => Some(Interest::READABLE),
            (false, true) => Some(Interest::WRITABLE),
            (false, false) => None, // waiting only on pooled completions
        };
        if desired == self.registered {
            return ConnFate::Alive;
        }
        let fd = raw_fd(&self.stream);
        let outcome = match (self.registered, desired) {
            (None, Some(interest)) => poller.register(fd, token, interest),
            (Some(_), Some(interest)) => poller.reregister(fd, token, interest),
            (Some(_), None) => poller.deregister(fd),
            (None, None) => Ok(()),
        };
        if outcome.is_err() {
            return ConnFate::Closed;
        }
        self.registered = desired;
        ConnFate::Alive
    }
}

/// The heart of one shard: block on the poller, absorb whatever the
/// inbox brought (new connections, completions), then service readiness
/// per connection. Every iteration ends with each touched connection
/// either settled (buffers flushed as far as the socket allows,
/// registration matching its remaining interests) or closed.
fn shard_loop(server: &Arc<Server>, shard: &Arc<Shard>) {
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_token: usize = 0;
    let mut events = Vec::new();
    loop {
        if shard.poller.wait(&mut events, None).is_err() {
            // Pathological (the poller fd itself failed). Back off so a
            // persistent error cannot spin the core; the inbox drain
            // below still makes progress.
            std::thread::sleep(Duration::from_millis(10));
        }
        let (joins, completions) = {
            let mut inbox = lock_recover(&shard.inbox);
            (
                std::mem::take(&mut inbox.joins),
                std::mem::take(&mut inbox.completions),
            )
        };
        for (stream, guard) in joins {
            if stream.set_nonblocking(true).is_err() {
                continue; // guard drops: the admission slot frees
            }
            let token = next_token;
            // WAKE_TOKEN is usize::MAX: unreachable by increment in any
            // realistic process lifetime, but skip it all the same.
            next_token = next_token.wrapping_add(1);
            if next_token == WAKE_TOKEN {
                next_token = 0;
            }
            let mut conn = Conn::new(stream, guard);
            // The socket may already hold data (or EOF) from before the
            // handoff; level-triggered registration inside finalize
            // surfaces it on the next wait either way, but draining now
            // answers the common connect-send-immediately case without
            // an extra loop turn.
            conn.drain_socket(server, shard, token);
            if conn.finalize(server, &shard.poller, token) == ConnFate::Alive {
                conns.insert(token, conn);
            }
        }
        for (token, reply) in completions {
            // A completion for a connection that died while its request
            // was in the pool is discarded: there is no one to answer.
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            conn.pending -= 1;
            conn.out.push_reply(&reply);
            if conn.finalize(server, &shard.poller, token) == ConnFate::Closed {
                remove_conn(&shard.poller, &mut conns, token);
            }
        }
        for &event in &events {
            let Some(conn) = conns.get_mut(&event.token) else {
                continue; // closed earlier this iteration
            };
            if event.readable {
                conn.drain_socket(server, shard, event.token);
            } else if event.hangup {
                // Pure error report (no data): the next read would only
                // error; stop reading and let finalize settle the rest.
                conn.eof = true;
            }
            if conn.finalize(server, &shard.poller, event.token) == ConnFate::Closed {
                remove_conn(&shard.poller, &mut conns, event.token);
            }
        }
    }
}

/// Drops one connection, unhooking it from the poller first. Dropping
/// the [`Conn`] closes the socket and releases its open-gauge guard.
fn remove_conn(poller: &Poller, conns: &mut HashMap<usize, Conn>, token: usize) {
    if let Some(conn) = conns.remove(&token) {
        if conn.registered.is_some() {
            let _ = poller.deregister(raw_fd(&conn.stream));
        }
    }
}

/// Accumulates request bytes until a full `\n`-terminated line exists.
/// The split points TCP chooses are invisible to the protocol layer: a
/// line may arrive in one segment with ten siblings or one byte at a
/// time.
#[derive(Default)]
struct RecvBuffer {
    buf: Vec<u8>,
    /// How far the newline scan has already looked, so a long line
    /// arriving in many segments is not rescanned from the start.
    scanned: usize,
}

impl RecvBuffer {
    fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered and not yet consumed as lines.
    fn len(&self) -> usize {
        self.buf.len()
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.scanned = 0;
    }

    /// Takes the next complete line off the front (newline consumed, a
    /// trailing `\r` stripped), or `None` until one exists.
    fn next_line(&mut self) -> Option<String> {
        match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(rel) => {
                let pos = self.scanned + rel;
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.scanned = 0;
                // Invalid UTF-8 flows through to the parser, which
                // answers it with a typed error — same outcome as the
                // BufRead pumps killing the connection, but cheaper for
                // the client to diagnose.
                Some(String::from_utf8_lossy(&line).into_owned())
            }
            None => {
                self.scanned = self.buf.len();
                None
            }
        }
    }

    /// At EOF: the final unterminated line, if any.
    fn take_trailing(&mut self) -> Option<String> {
        if self.buf.is_empty() {
            return None;
        }
        let line = String::from_utf8_lossy(&self.buf).into_owned();
        self.clear();
        Some(line)
    }
}

/// Buffers rendered response lines toward one socket, surviving partial
/// writes: `flush_to` pushes as much as the peer accepts and the
/// unwritten tail waits for the next write-readiness event.
#[derive(Default)]
struct SendBuffer {
    buf: Vec<u8>,
    /// Bytes of `buf` already written to the socket.
    pos: usize,
}

impl SendBuffer {
    fn push_line(&mut self, line: &str) {
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
    }

    /// Queues one reply: a newline-terminated JSON line, or a binary
    /// frame's raw bytes (self-delimiting, no terminator).
    fn push_reply(&mut self, reply: &Reply) {
        match reply {
            Reply::Line(line) => self.push_line(line),
            Reply::Frame(frame) => self.buf.extend_from_slice(frame),
        }
    }

    fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Writes as much as `writer` accepts. `Ok(true)` means everything
    /// is out; `Ok(false)` means the socket pushed back (WouldBlock) and
    /// the rest is parked; `Err` is fatal for the connection.
    fn flush_to<W: Write>(&mut self, writer: &mut W) -> io::Result<bool> {
        while self.pos < self.buf.len() {
            match writer.write(&self.buf[self.pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.compact();
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }

    /// Drops the already-written prefix so a long-lived slow reader
    /// cannot grow the buffer without bound.
    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recv_buffer_reassembles_a_line_split_across_segments() {
        let mut recv = RecvBuffer::default();
        recv.extend(b"{\"kind\":\"sta");
        assert_eq!(recv.next_line(), None, "no newline yet");
        recv.extend(b"ts\"}");
        assert_eq!(recv.next_line(), None, "still no newline");
        recv.extend(b"\n{\"kind\":");
        assert_eq!(recv.next_line().as_deref(), Some("{\"kind\":\"stats\"}"));
        assert_eq!(recv.next_line(), None);
        assert_eq!(recv.len(), b"{\"kind\":".len(), "the tail stays buffered");
    }

    #[test]
    fn recv_buffer_yields_multiple_lines_from_one_segment() {
        let mut recv = RecvBuffer::default();
        recv.extend(b"one\r\ntwo\n\nthree");
        assert_eq!(recv.next_line().as_deref(), Some("one"), "CR stripped");
        assert_eq!(recv.next_line().as_deref(), Some("two"));
        assert_eq!(recv.next_line().as_deref(), Some(""), "blank line kept");
        assert_eq!(recv.next_line(), None);
        assert_eq!(recv.take_trailing().as_deref(), Some("three"));
        assert_eq!(recv.take_trailing(), None);
    }

    #[test]
    fn recv_buffer_handles_byte_at_a_time_arrival() {
        let mut recv = RecvBuffer::default();
        for &b in b"{\"kind\":\"stats\"}" {
            recv.extend(&[b]);
            assert_eq!(recv.next_line(), None);
        }
        recv.extend(b"\n");
        assert_eq!(recv.next_line().as_deref(), Some("{\"kind\":\"stats\"}"));
    }

    /// A writer that accepts a budget of bytes, then reports WouldBlock
    /// — a full socket send buffer in miniature.
    struct Throttled {
        accept: usize,
        out: Vec<u8>,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.accept == 0 {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.accept);
            self.accept -= n;
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn send_buffer_parks_the_tail_on_a_full_socket_and_resumes() {
        let mut out = SendBuffer::default();
        out.push_line("{\"ok\":true,\"kind\":\"stats\"}");
        out.push_line("{\"ok\":true,\"kind\":\"query\"}");
        let mut sock = Throttled {
            accept: 10,
            out: Vec::new(),
        };
        assert!(!out.flush_to(&mut sock).unwrap(), "socket filled up");
        assert!(!out.is_empty());
        assert_eq!(sock.out.len(), 10);
        // The peer drained its receive queue: writability returns.
        sock.accept = usize::MAX;
        assert!(out.flush_to(&mut sock).unwrap());
        assert!(out.is_empty());
        assert_eq!(
            sock.out,
            b"{\"ok\":true,\"kind\":\"stats\"}\n{\"ok\":true,\"kind\":\"query\"}\n"
        );
    }

    #[test]
    fn send_buffer_treats_write_zero_as_fatal() {
        struct Zero;
        impl Write for Zero {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut out = SendBuffer::default();
        out.push_line("x");
        let err = out.flush_to(&mut Zero).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn send_buffer_retries_interrupted_writes() {
        struct InterruptOnce {
            interrupted: bool,
            out: Vec<u8>,
        }
        impl Write for InterruptOnce {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if !self.interrupted {
                    self.interrupted = true;
                    return Err(io::ErrorKind::Interrupted.into());
                }
                self.out.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut out = SendBuffer::default();
        out.push_line("ping");
        let mut sock = InterruptOnce {
            interrupted: false,
            out: Vec::new(),
        };
        assert!(out.flush_to(&mut sock).unwrap());
        assert_eq!(sock.out, b"ping\n");
    }
}
