//! High-throughput query serving over persisted multi-placement
//! structures.
//!
//! The paper's economics are *generate once, query many* (Fig. 1): the
//! expensive nested-annealing generation runs offline; synthesis loops
//! then instantiate placements in microseconds. This crate is the "many"
//! side — the serving subsystem the ROADMAP's north star ("heavy traffic
//! from millions of users") needs:
//!
//! * [`CompiledQueryIndex`] — a structure's interval rows compiled once
//!   into flat sorted arrays plus fixed-width candidate bitsets: binary
//!   search + bitset `AND` per query, **zero heap allocation per query**,
//!   bit-identical to [`mps_core::MultiPlacementStructure::query`]
//!   (cross-checked on every load).
//! * [`CompiledQueryIndexV2`] — the v2 plan for large structures: per
//!   row, an eyros-style pivot/bucket/center partition (quantile pivots
//!   in Eytzinger order, center entries for pivot-straddling segments,
//!   leaf buckets for the rest) over an interned bitset pool with
//!   per-set nonzero-word lists, so intersection touches only live
//!   words and lookup cost stays near-flat as region count grows.
//!   [`IndexPlan::choose`] picks the plan per structure at load time;
//!   [`CompiledIndex`] dispatches either behind one surface, and both
//!   plans share one [`QueryScratch`]. Same bit-identity contract,
//!   enforced by the same load-time differential check.
//! * [`StructureRegistry`] — the set of persisted `mps-v1` artifacts a
//!   server answers for, loaded from a directory and hot-swapped behind
//!   an `Arc`: readers take lock-free snapshots; a reload swaps the whole
//!   set atomically while in-flight queries finish on the old one.
//! * [`AnswerCache`] — a sharded LRU answer cache keyed by
//!   `(structure, Dims)` in front of the compiled plans: hits replay the
//!   exact stored answer (bit-identical by construction), a registry
//!   hot-reload invalidates all-or-nothing, and hit/miss/eviction
//!   counters surface through `stats`.
//! * [`Server`] + the `mps-serve` binary — a line-delimited JSON protocol
//!   (`query`, `batch_query`, `instantiate`, `reload`, `stats`,
//!   `list_structures`) over stdin/stdout and localhost TCP, with
//!   request ids + pipelining (many requests in flight per connection,
//!   responses tagged and out of order) and a [`WorkerPool`] behind
//!   instantiation and tagged dispatch. TCP connections are owned by a
//!   fixed pool of shared-nothing shard event loops (one per core by
//!   default) instead of one thread each, so tens of thousands of idle
//!   or bursty clients cost no stacks and no context-switch storms;
//!   where the platform has no readiness primitive the server falls
//!   back to thread-per-connection at runtime. Malformed input of any
//!   kind is answered with a typed error line; the server never dies on
//!   input — a panicking handler costs one `internal` error response,
//!   never a poisoned lock. The full wire contract is specified in
//!   `crates/serve/PROTOCOL.md`.
//!
//! # Quickstart
//!
//! ```sh
//! cargo run --release -p mps-bench --bin table2 -- --effort 0.3 --save out/structures
//! cargo run --release -p mps-serve -- out/structures
//! # then, per line on stdin:
//! # {"kind":"query","structure":"circ02","dims":[[30,40],[25,25],[25,25],[60,20],[40,40],[40,40]]}
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod compiled;
mod compiled_v2;
#[cfg(feature = "serde")]
pub mod frame;
mod pool;
#[cfg(feature = "serde")]
mod protocol;
#[cfg(feature = "serde")]
mod refine;
#[cfg(feature = "serde")]
mod registry;
#[cfg(feature = "serde")]
mod server;
#[cfg(feature = "serde")]
mod shard;
mod telemetry;

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering from poisoning. Every mutex in this crate
/// guards data that is valid at any interleaving (monotonic counters, an
/// id high-water mark, fully rendered response lines, an LRU map), so a
/// panic on one connection's thread must cost that one request — not,
/// via a poisoned `.expect`, every other connection that ever touches
/// the lock again.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

pub use cache::{AnswerCache, CacheClass, CacheLookup, CacheStats, MissToken};
pub use compiled::{CompiledQueryIndex, QueryScratch};
pub use compiled_v2::{CompiledIndex, CompiledQueryIndexV2, IndexPlan};
pub use pool::{PoolError, WorkerPool};
#[cfg(feature = "serde")]
pub use protocol::{
    error_response, parse_envelope, parse_request, tagged_error_response, Envelope, EnvelopeError,
    ErrorKind, Request, RequestError, REQUEST_KINDS,
};
#[cfg(feature = "serde")]
pub use registry::{ReloadReport, ServeError, ServedStructure, StructureRegistry};
#[cfg(feature = "serde")]
pub use server::{Server, ServerConfig};
pub use telemetry::{
    HeatSnapshot, HistogramSnapshot, LaneStats, LatencyHistogram, SlowRing, Stage, StageTrace,
    StripedCounters, StructureHeat, Telemetry, TraceEntry, HEAT_BINS, HISTOGRAM_BUCKETS,
    STAGE_COUNT,
};
