//! End-to-end test of the real `mps-serve` binary: generate + save an
//! artifact, start the server process, pipe a query stream through
//! stdin/stdout (and through the optional localhost TCP listener), and
//! diff every answer against direct `query` calls on the same artifact.
#![cfg(feature = "serde")]

use mps_core::{GeneratorConfig, MpsGenerator, MultiPlacementStructure};
use mps_geom::Coord;
use mps_netlist::benchmarks;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn artifact_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mps_serve_proc_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate_artifact(dir: &std::path::Path) -> MultiPlacementStructure {
    let circuit = benchmarks::circ01();
    let config = GeneratorConfig::builder()
        .outer_iterations(40)
        .inner_iterations(30)
        .seed(31)
        .build();
    let mps = MpsGenerator::new(&circuit, config).generate().unwrap();
    mps.save_json(dir.join("circ01.mps.json")).unwrap();
    mps
}

fn query_line(name: &str, dims: &[(Coord, Coord)]) -> String {
    let pairs: Vec<String> = dims.iter().map(|&(w, h)| format!("[{w},{h}]")).collect();
    format!(
        r#"{{"kind":"query","structure":"{name}","dims":[{}]}}"#,
        pairs.join(",")
    )
}

fn random_stream(n: usize, seed: u64) -> Vec<mps_geom::Dims> {
    let bounds = benchmarks::circ01().dim_bounds();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            bounds
                .iter()
                .map(|b| {
                    (
                        rng.random_range(b.w.lo()..=b.w.hi()),
                        rng.random_range(b.h.lo()..=b.h.hi()),
                    )
                })
                .collect()
        })
        .collect()
}

fn response_id(line: &str) -> Option<u32> {
    let value: Value = serde_json::parse(line).expect("server emits valid JSON");
    assert_eq!(
        value.get("ok").and_then(Value::as_bool),
        Some(true),
        "unexpected refusal: {line}"
    );
    value
        .get("id")
        .and_then(Value::as_u64)
        .map(|id| u32::try_from(id).unwrap())
}

struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn stdin_stream_answers_match_direct_queries() {
    let dir = artifact_dir("stdin");
    let mps = generate_artifact(&dir);

    let mut child = Command::new(env!("CARGO_BIN_EXE_mps-serve"))
        .arg(&dir)
        .arg("--workers")
        .arg("2")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mps-serve");
    let mut stdin = child.stdin.take().unwrap();
    let stdout = BufReader::new(child.stdout.take().unwrap());
    let child = KillOnDrop(child);

    let stream = random_stream(200, 0xE2E);
    let writer = {
        let stream = stream.clone();
        std::thread::spawn(move || {
            writeln!(stdin, "{{\"kind\":\"list_structures\"}}").unwrap();
            for dims in &stream {
                writeln!(stdin, "{}", query_line("circ01", dims)).unwrap();
            }
            // One malformed line mid-stream must cost exactly one error
            // response, not the process.
            writeln!(stdin, "{{oops").unwrap();
            // Any in-bounds vector instantiates: covered space answers
            // from the structure, uncovered space from the fallback.
            let pairs: Vec<String> = stream[0]
                .iter()
                .map(|&(w, h)| format!("[{w},{h}]"))
                .collect();
            writeln!(
                stdin,
                r#"{{"kind":"instantiate","structure":"circ01","dims":[{}]}}"#,
                pairs.join(",")
            )
            .unwrap();
            let dims_list: Vec<String> = stream[..50]
                .iter()
                .map(|dims| {
                    let pairs: Vec<String> =
                        dims.iter().map(|&(w, h)| format!("[{w},{h}]")).collect();
                    format!("[{}]", pairs.join(","))
                })
                .collect();
            writeln!(
                stdin,
                r#"{{"kind":"batch_query","structure":"circ01","dims_list":[{}]}}"#,
                dims_list.join(",")
            )
            .unwrap();
            writeln!(stdin, "{{\"kind\":\"stats\"}}").unwrap();
            // dropping stdin closes the stream; the server exits cleanly
        })
    };

    let mut lines = stdout.lines();
    let mut next = || lines.next().expect("server closed early").unwrap();

    // list_structures
    let list = next();
    assert!(list.contains("\"circ01\""), "{list}");

    // the query stream: every answer must equal the direct query
    for (k, dims) in stream.iter().enumerate() {
        let got = response_id(&next());
        let expected = mps.query(dims).map(|id| id.0);
        assert_eq!(got, expected, "probe {k} ({dims:?}) diverges over the wire");
    }

    // the malformed line: one typed error, then business as usual
    let error_line = next();
    let error: Value = serde_json::parse(&error_line).unwrap();
    assert_eq!(error.get("ok").and_then(Value::as_bool), Some(false));

    // instantiate: legal coordinates with one [x, y] pair per block
    let inst: Value = serde_json::parse(&next()).unwrap();
    assert_eq!(inst.get("ok").and_then(Value::as_bool), Some(true));
    let coords = inst.get("coords").and_then(Value::as_array).unwrap();
    assert_eq!(coords.len(), mps.block_count());

    // batch_query: element-wise equal to query_batch
    let batch: Value = serde_json::parse(&next()).unwrap();
    let ids = batch.get("ids").and_then(Value::as_array).unwrap();
    let expected = mps.query_batch(&stream[..50]);
    assert_eq!(ids.len(), expected.len());
    for (got, want) in ids.iter().zip(&expected) {
        assert_eq!(got.as_u64(), want.map(|id| u64::from(id.0)));
    }

    // stats counted the traffic
    let stats: Value = serde_json::parse(&next()).unwrap();
    let counters = stats.get("counters").unwrap();
    assert_eq!(counters.get("errors").and_then(Value::as_u64), Some(1));
    assert_eq!(
        counters.get("queries").and_then(Value::as_u64),
        Some(200 + 50)
    );

    writer.join().unwrap();
    drop(child);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawns `mps-serve --tcp 0` over `dir` and returns the child plus the
/// address it announced **on stdout** (the machine-readable contract
/// that lets parallel CI jobs always pass port 0 and never collide).
fn spawn_tcp_server(dir: &std::path::Path, extra_args: &[&str]) -> (KillOnDrop, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mps-serve"))
        .arg(dir)
        .args(["--tcp", "0"]) // port 0: the OS picks; announced on stdout
        .args(extra_args)
        .stdin(Stdio::piped()) // held open so the server keeps running
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mps-serve");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut announce = String::new();
    stdout
        .read_line(&mut announce)
        .expect("server announces its address before serving");
    let value: Value = serde_json::parse(announce.trim()).expect("announce line is JSON");
    assert_eq!(value.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(
        value.get("kind").and_then(Value::as_str),
        Some("listening"),
        "first stdout line must be the listening announce, got {announce}"
    );
    let addr = value
        .get("addr")
        .and_then(Value::as_str)
        .expect("announce carries the bound address")
        .to_owned();
    (KillOnDrop(child), addr)
}

#[test]
fn tcp_listener_serves_the_same_protocol() {
    let dir = artifact_dir("tcp");
    let mps = generate_artifact(&dir);
    let (child, addr) = spawn_tcp_server(&dir, &[]);

    let stream = TcpStream::connect(&*addr).expect("connect to mps-serve");
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    for dims in random_stream(50, 0x7C9) {
        writeln!(writer, "{}", query_line("circ01", &dims)).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(
            response_id(line.trim_end()),
            mps.query(&dims).map(|id| id.0),
            "TCP answer diverges at {dims:?}"
        );
    }
    drop(child);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pipelining over the wire: a whole burst of tagged requests is written
/// before any response is read; every response is matched back by its
/// `req` tag (arrival order is explicitly not part of the contract) and
/// diffed against the direct query path.
#[test]
fn tcp_pipelined_burst_answers_every_tagged_request() {
    let dir = artifact_dir("pipeline");
    let mps = generate_artifact(&dir);
    let (child, addr) = spawn_tcp_server(&dir, &["--workers", "3"]);

    let stream = TcpStream::connect(&*addr).expect("connect to mps-serve");
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let queries = random_stream(120, 0xF1F0);
    for (k, dims) in queries.iter().enumerate() {
        let pairs: Vec<String> = dims.iter().map(|&(w, h)| format!("[{w},{h}]")).collect();
        writeln!(
            writer,
            r#"{{"id":{k},"kind":"query","structure":"circ01","dims":[{}]}}"#,
            pairs.join(",")
        )
        .unwrap();
    }
    let mut answered = vec![false; queries.len()];
    for _ in 0..queries.len() {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let value: Value = serde_json::parse(line.trim_end()).expect("valid response JSON");
        assert_eq!(
            value.get("ok").and_then(Value::as_bool),
            Some(true),
            "unexpected refusal: {line}"
        );
        let req = value
            .get("req")
            .and_then(Value::as_u64)
            .expect("pipelined responses are tagged") as usize;
        assert!(!answered[req], "request {req} answered twice");
        answered[req] = true;
        assert_eq!(
            value.get("id").and_then(Value::as_u64),
            mps.query(&queries[req]).map(|id| u64::from(id.0)),
            "pipelined answer {req} diverges from the direct query"
        );
    }
    assert!(answered.iter().all(|&a| a), "every request answered");

    // The same burst again: now largely cache hits — still identical,
    // and the stats response reports them.
    for (k, dims) in queries.iter().enumerate() {
        let pairs: Vec<String> = dims.iter().map(|&(w, h)| format!("[{w},{h}]")).collect();
        writeln!(
            writer,
            r#"{{"id":{},"kind":"query","structure":"circ01","dims":[{}]}}"#,
            queries.len() + k,
            pairs.join(",")
        )
        .unwrap();
    }
    for _ in 0..queries.len() {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let value: Value = serde_json::parse(line.trim_end()).unwrap();
        let req =
            value.get("req").and_then(Value::as_u64).expect("tagged") as usize - queries.len();
        assert_eq!(
            value.get("id").and_then(Value::as_u64),
            mps.query(&queries[req]).map(|id| u64::from(id.0)),
            "cached answer {req} diverges from the direct query"
        );
    }
    writeln!(writer, r#"{{"id":{},"kind":"stats"}}"#, 2 * queries.len()).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let stats: Value = serde_json::parse(line.trim_end()).unwrap();
    let cache = stats.get("cache").expect("stats carries cache counters");
    assert!(
        cache.get("hits").and_then(Value::as_u64).unwrap_or(0) >= queries.len() as u64,
        "second pass must hit the cache: {line}"
    );
    drop(child);
    let _ = std::fs::remove_dir_all(&dir);
}
