//! The differential contract of the compiled query plan: on any
//! structure, [`CompiledQueryIndex`] must answer **bit-identically** to
//! [`MultiPlacementStructure::query`] — here proven on ≥ 10,000 random
//! probes against a circ02-sized generated structure, on a
//! save/load-cycled structure, and property-based over random circuits.

use mps_core::{GeneratorConfig, MpsGenerator, MultiPlacementStructure};
use mps_geom::{Coord, Dims};
use mps_netlist::benchmarks::{self, random_circuit};
use mps_netlist::Circuit;
use mps_serve::{CompiledQueryIndex, QueryScratch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn generate(circuit: &Circuit, outer: usize, inner: usize, seed: u64) -> MultiPlacementStructure {
    let config = GeneratorConfig::builder()
        .outer_iterations(outer)
        .inner_iterations(inner)
        .seed(seed)
        .build();
    MpsGenerator::new(circuit, config)
        .generate()
        .expect("test circuits are valid")
}

/// Random probes over (and slightly beyond) the circuit's dimension
/// space: uniform in-bounds vectors salted with out-of-bounds values.
fn probes(circuit: &Circuit, n: usize, seed: u64) -> Vec<Dims> {
    let bounds = circuit.dim_bounds();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|k| {
            let mut dims: Vec<(Coord, Coord)> = bounds
                .iter()
                .map(|b| {
                    (
                        rng.random_range(b.w.lo()..=b.w.hi()),
                        rng.random_range(b.h.lo()..=b.h.hi()),
                    )
                })
                .collect();
            if k % 9 == 4 {
                let i = k % bounds.len();
                dims[i].1 = bounds[i].h.hi() + 1 + rng.random_range(0..50);
            }
            // Unchecked: the stream deliberately carries out-of-bounds
            // salt both paths must answer None for.
            Dims::from_vec_unchecked(dims)
        })
        .collect()
}

fn assert_bit_identical(mps: &MultiPlacementStructure, stream: &[Dims]) {
    let index = CompiledQueryIndex::build(mps);
    let mut scratch = QueryScratch::new();
    let mut answered = 0usize;
    for (k, dims) in stream.iter().enumerate() {
        let reference = mps.query(dims);
        let compiled = index.query_with_scratch(dims, &mut scratch);
        assert_eq!(
            reference, compiled,
            "probe {k} ({dims:?}) diverges between the interpretive and compiled paths"
        );
        answered += usize::from(reference.is_some());
    }
    assert!(
        answered > 0,
        "probe stream never hit covered space — the battery proves nothing"
    );
    // The batch paths answer the same stream identically too.
    assert_eq!(index.query_batch(stream), mps.query_batch(stream));
}

/// The acceptance-criteria battery: ≥ 10,000 random probes on a
/// circ02-sized structure, bit-identical answers.
#[test]
fn ten_thousand_probes_on_circ02() {
    let bm = benchmarks::by_name("circ02").unwrap();
    let mps = generate(&bm.circuit, 60, 40, 20050307);
    assert!(mps.placement_count() > 0);
    assert_bit_identical(&mps, &probes(&bm.circuit, 10_000, 0xD1FF));
}

#[test]
fn ten_thousand_probes_on_circ01() {
    let bm = benchmarks::by_name("circ01").unwrap();
    let mps = generate(&bm.circuit, 50, 40, 7);
    assert_bit_identical(&mps, &probes(&bm.circuit, 10_000, 0xFEED));
}

/// The compiled plan must agree with the interpretive path on a
/// structure that went through a save/load cycle (the serving scenario:
/// artifacts come from disk, not from the generating process).
#[cfg(feature = "serde")]
#[test]
fn compiled_index_agrees_after_persistence_roundtrip() {
    let bm = benchmarks::by_name("circ01").unwrap();
    let mps = generate(&bm.circuit, 40, 30, 99);
    let reloaded = MultiPlacementStructure::from_json(&mps.to_json()).unwrap();
    assert_bit_identical(&reloaded, &probes(&bm.circuit, 2_000, 0xBEEF));
    // And the built-in load-time check passes on the reloaded structure.
    CompiledQueryIndex::build(&reloaded)
        .verify_against(&reloaded, 10_000, 0xA11CE)
        .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Element-wise equivalence of the compiled index (single and batch
    /// paths) to `query` over arbitrary generated structures — the same
    /// contract `query_batch` proves for the interpretive path in
    /// crates/core/tests/query_batch.rs.
    #[test]
    fn compiled_matches_query_on_random_circuits(
        seed in 0u64..50_000,
        blocks in 2usize..6,
        nets in 2usize..7,
    ) {
        let circuit = random_circuit(blocks, nets, seed);
        let mps = generate(&circuit, 30, 30, seed);
        let index = CompiledQueryIndex::build(&mps);
        let stream = probes(&circuit, 400, seed ^ 0xC0DE);
        let mut scratch = QueryScratch::new();
        for dims in &stream {
            prop_assert_eq!(
                mps.query(dims),
                index.query_with_scratch(dims, &mut scratch)
            );
        }
        prop_assert_eq!(index.query_batch(&stream), mps.query_batch(&stream));
    }
}
