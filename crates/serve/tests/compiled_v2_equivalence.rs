//! The differential contract between the two compiled plans: on any
//! structure, [`CompiledQueryIndexV2`] must answer **bit-identically** to
//! both [`CompiledQueryIndex`] (the v1 plan) and the interpretive
//! [`MultiPlacementStructure::query`] path — proven on ≥ 10,000 probes
//! per structure over generated, synthetic-grid, and hand-built
//! degenerate structures (zero-width intervals, fully-overlapping rows,
//! single-region structures, probes landing exactly on pivots), and
//! property-based over random circuits.

use mps_core::{
    grid_structure, GeneratorConfig, MpsGenerator, MultiPlacementStructure, StoredPlacement,
};
use mps_geom::{BlockRanges, Coord, Dims, DimsBox, Interval, Rect};
use mps_netlist::benchmarks::{self, random_circuit};
use mps_netlist::{modgen, Block, Circuit};
use mps_placer::SequencePair;
use mps_serve::{CompiledIndex, CompiledQueryIndex, CompiledQueryIndexV2, IndexPlan, QueryScratch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn generate(circuit: &Circuit, outer: usize, inner: usize, seed: u64) -> MultiPlacementStructure {
    let config = GeneratorConfig::builder()
        .outer_iterations(outer)
        .inner_iterations(inner)
        .seed(seed)
        .build();
    MpsGenerator::new(circuit, config)
        .generate()
        .expect("test circuits are valid")
}

/// Random probes over (and slightly beyond) the circuit's dimension
/// space: uniform in-bounds vectors salted with out-of-bounds values.
fn probes(circuit: &Circuit, n: usize, seed: u64) -> Vec<Dims> {
    let bounds = circuit.dim_bounds();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|k| {
            let mut dims: Vec<(Coord, Coord)> = bounds
                .iter()
                .map(|b| {
                    (
                        rng.random_range(b.w.lo()..=b.w.hi()),
                        rng.random_range(b.h.lo()..=b.h.hi()),
                    )
                })
                .collect();
            if k % 9 == 4 {
                let i = k % bounds.len();
                dims[i].1 = bounds[i].h.hi() + 1 + rng.random_range(0..50);
            }
            // Unchecked: the stream deliberately carries out-of-bounds
            // salt both paths must answer None for.
            Dims::from_vec_unchecked(dims)
        })
        .collect()
}

/// Every segment boundary of every stored region, probed exactly — the
/// values pivots are derived from, so pivot-exact comparisons (the
/// `Ordering::Equal` branch of the v2 descent) are guaranteed to fire.
fn boundary_probes(mps: &MultiPlacementStructure) -> Vec<Dims> {
    let mut out = Vec::new();
    for (_, entry) in mps.iter() {
        let ranges = entry.dims_box.ranges();
        for (corner_w, corner_h) in [
            |r: &BlockRanges| (r.w.lo(), r.h.lo()),
            |r: &BlockRanges| (r.w.hi(), r.h.hi()),
            |r: &BlockRanges| (r.w.hi(), r.h.lo()),
        ]
        .map(|f| ranges.iter().map(f).unzip::<_, _, Vec<_>, Vec<_>>())
        {
            let dims: Vec<(Coord, Coord)> = corner_w.into_iter().zip(corner_h).collect();
            out.push(Dims::from_vec_unchecked(dims));
        }
    }
    out
}

/// The battery: both compiled plans against the interpretive reference,
/// single-query, scratch, and batch paths.
fn assert_plans_identical(mps: &MultiPlacementStructure, stream: &[Dims]) {
    let v1 = CompiledQueryIndex::build(mps);
    let v2 = CompiledQueryIndexV2::build(mps);
    let mut scratch = QueryScratch::new();
    let mut answered = 0usize;
    for (k, dims) in stream.iter().enumerate() {
        let reference = mps.query(dims);
        let a = v1.query_with_scratch(dims, &mut scratch);
        let b = v2.query_with_scratch(dims, &mut scratch);
        assert_eq!(reference, a, "probe {k} ({dims:?}): v1 diverges");
        assert_eq!(reference, b, "probe {k} ({dims:?}): v2 diverges");
        answered += usize::from(reference.is_some());
    }
    assert!(
        answered > 0,
        "probe stream never hit covered space — the battery proves nothing"
    );
    assert_eq!(v2.query_batch(stream), mps.query_batch(stream));
    // The load-time differential check agrees through the enum too.
    for plan in [IndexPlan::V1, IndexPlan::V2] {
        CompiledIndex::build(mps, plan)
            .verify_against(mps, 2_000, 0xCAFE)
            .unwrap();
    }
}

/// ≥ 10,000 probes per benchmark structure, both plans bit-identical.
#[test]
fn ten_thousand_probes_on_generated_structures() {
    for (name, seed) in [("circ01", 7u64), ("circ02", 20050307)] {
        let bm = benchmarks::by_name(name).unwrap();
        let mps = generate(&bm.circuit, 50, 40, seed);
        assert!(mps.placement_count() > 0);
        assert_plans_identical(&mps, &probes(&bm.circuit, 10_000, seed ^ 0xD1FF));
    }
}

/// The synthetic grid corpus the scaling bench runs on: hundreds of
/// segments in the leading rows (deep pivot trees, populated buckets and
/// centers) plus fully-overlapping single-segment trailing rows.
#[test]
fn ten_thousand_probes_on_grid_structures() {
    let (circuit, _model) = modgen::ladder_circuit(3, 1.0);
    for target in [1, 17, 500] {
        let mps = grid_structure(&circuit, target, 0xA5);
        let stream = probes(&circuit, 10_000, 0x6E1D ^ target as u64);
        assert_plans_identical(&mps, &stream);
        // Exact segment-boundary probes: values that coincide with the
        // quantile ranks pivots are cut at, so the v == pivot descent
        // branch is exercised with and without a center on the path.
        assert_plans_identical(&mps, &boundary_probes(&mps));
    }
}

/// A single-region structure compiles to a one-bucket, zero-pivot layout
/// on every row; both plans must still agree everywhere including the
/// region's exact corners.
#[test]
fn single_region_structure() {
    let (circuit, _model) = modgen::ladder_circuit(2, 1.0);
    let mps = grid_structure(&circuit, 1, 3);
    assert_eq!(mps.placement_count(), 1);
    assert_plans_identical(&mps, &probes(&circuit, 10_000, 0x51));
    assert_plans_identical(&mps, &boundary_probes(&mps));
}

/// Hand-built degenerate layouts: zero-width (point) intervals and rows
/// where every region shares one identical full-range segment.
#[test]
fn degenerate_layouts_agree() {
    let c = Circuit::builder("degenerate")
        .block(Block::new("A", 1, 64, 1, 64))
        .block(Block::new("B", 1, 64, 1, 64))
        .net_connecting("n", &[0, 1])
        .build()
        .unwrap();
    let mut mps = MultiPlacementStructure::new(&c, Rect::from_xywh(0, 0, 256, 256));
    let pair = SequencePair::row(2);
    let entry = |ranges: [(Coord, Coord, Coord, Coord); 2]| {
        let ranges: Vec<BlockRanges> = ranges
            .iter()
            .map(|&(wl, wh, hl, hh)| BlockRanges::new(Interval::new(wl, wh), Interval::new(hl, hh)))
            .collect();
        let top: Vec<(Coord, Coord)> = ranges.iter().map(|r| (r.w.hi(), r.h.hi())).collect();
        StoredPlacement {
            placement: pair.pack(&top),
            dims_box: DimsBox::new(ranges),
            avg_cost: 1.0,
            best_cost: 1.0,
            best_dims: top.iter().copied().collect(),
        }
    };
    // 40 zero-width slabs of block A's width — every segment of the
    // first row is a single point (lo == hi), and every other row is one
    // full-range segment shared by all regions (fully overlapping).
    for w in 0..40 {
        mps.insert_unchecked(entry([(w + 1, w + 1, 1, 64), (1, 64, 1, 64)]));
    }
    mps.check_invariants().unwrap();
    assert_plans_identical(&mps, &probes(&c, 10_000, 0xDE6));
    assert_plans_identical(&mps, &boundary_probes(&mps));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Plan-vs-plan-vs-reference equivalence over arbitrary generated
    /// structures, through the same enum dispatch the registry serves.
    #[test]
    fn plans_agree_on_random_circuits(
        seed in 0u64..50_000,
        blocks in 2usize..6,
        nets in 2usize..7,
    ) {
        let circuit = random_circuit(blocks, nets, seed);
        let mps = generate(&circuit, 30, 30, seed);
        let v1 = CompiledIndex::build(&mps, IndexPlan::V1);
        let v2 = CompiledIndex::build(&mps, IndexPlan::V2);
        let stream = probes(&circuit, 400, seed ^ 0xC0DE);
        let mut scratch = QueryScratch::new();
        for dims in &stream {
            let reference = mps.query(dims);
            prop_assert_eq!(reference, v1.query_with_scratch(dims, &mut scratch));
            prop_assert_eq!(reference, v2.query_with_scratch(dims, &mut scratch));
        }
        prop_assert_eq!(v2.query_batch(&stream), mps.query_batch(&stream));
    }
}
