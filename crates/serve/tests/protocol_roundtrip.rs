//! Property-based wire round-trip of typed dimension vectors through
//! the serve protocol: a `Dims` serialized into a request line decodes
//! back to the identical `Dims` (including negative/out-of-range values,
//! which the protocol deliberately passes through to the server's typed
//! bounds validation).
#![cfg(feature = "serde")]

use mps_geom::Dims;
use mps_serve::{parse_request, Request};
use proptest::prelude::*;
use serde::{Map, Serialize, Value};

fn raw_pairs() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((-10_000i64..10_000, -10_000i64..10_000), 1..9)
}

fn name() -> impl Strategy<Value = String> {
    (0u32..10_000).prop_map(|i| format!("structure_{i}"))
}

proptest! {
    /// query: the `dims` member round-trips bit-for-bit.
    #[test]
    fn query_dims_roundtrip_through_the_wire(pairs in raw_pairs(), name in name()) {
        let dims = Dims::from_vec_unchecked(pairs);
        let mut map = Map::new();
        map.insert("kind", Value::String("query".into()));
        map.insert("structure", Value::String(name.clone()));
        map.insert("dims", dims.to_value());
        let line = serde_json::to_string(&Value::Object(map)).unwrap();

        let request = parse_request(&line).expect("well-formed line parses");
        prop_assert_eq!(request, Request::Query { structure: name, dims });
    }

    /// batch_query: every element of `dims_list` round-trips in order.
    #[test]
    fn batch_dims_roundtrip_through_the_wire(
        lists in prop::collection::vec(raw_pairs(), 1..5),
        name in name(),
    ) {
        let dims_list: Vec<Dims> = lists.into_iter().map(Dims::from_vec_unchecked).collect();
        let mut map = Map::new();
        map.insert("kind", Value::String("batch_query".into()));
        map.insert("structure", Value::String(name.clone()));
        map.insert("dims_list", dims_list.to_value());
        let line = serde_json::to_string(&Value::Object(map)).unwrap();

        let request = parse_request(&line).expect("well-formed line parses");
        prop_assert_eq!(request, Request::BatchQuery { structure: name, dims_list });
    }
}
