//! Property-based wire round-trip of typed dimension vectors through
//! the serve protocol: a valid `Dims` serialized into a request line
//! decodes back to the identical `Dims`, while any vector with a
//! non-positive width/height is refused at the trust boundary with the
//! typed `out_of_bounds` error (regression: these used to flow through
//! `Dims::from_vec_unchecked` unvalidated).
#![cfg(feature = "serde")]

use mps_geom::Dims;
use mps_serve::{parse_request, ErrorKind, Request};
use proptest::prelude::*;
use serde::{Map, Serialize, Value};

fn valid_pairs() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((1i64..10_000, 1i64..10_000), 1..9)
}

fn name() -> impl Strategy<Value = String> {
    (0u32..10_000).prop_map(|i| format!("structure_{i}"))
}

fn query_line(kind: &str, name: &str, member: &str, value: Value) -> String {
    let mut map = Map::new();
    map.insert("kind", Value::String(kind.into()));
    map.insert("structure", Value::String(name.into()));
    map.insert(member, value);
    serde_json::to_string(&Value::Object(map)).unwrap()
}

proptest! {
    /// query: a valid `dims` member round-trips bit-for-bit.
    #[test]
    fn query_dims_roundtrip_through_the_wire(pairs in valid_pairs(), name in name()) {
        let dims = Dims::from_vec_unchecked(pairs);
        let line = query_line("query", &name, "dims", dims.to_value());
        let request = parse_request(&line).expect("well-formed line parses");
        prop_assert_eq!(request, Request::Query { structure: name, dims });
    }

    /// batch_query: every element of `dims_list` round-trips in order.
    #[test]
    fn batch_dims_roundtrip_through_the_wire(
        lists in prop::collection::vec(valid_pairs(), 1..5),
        name in name(),
    ) {
        let dims_list: Vec<Dims> = lists.into_iter().map(Dims::from_vec_unchecked).collect();
        let line = query_line("batch_query", &name, "dims_list", dims_list.to_value());
        let request = parse_request(&line).expect("well-formed line parses");
        prop_assert_eq!(
            request,
            Request::BatchQuery { structure: name, dims_list, binary: false }
        );
    }

    /// Poisoning any one pair of an otherwise valid vector with a
    /// non-positive width or height yields a typed `out_of_bounds`
    /// refusal — never a panic, never an accepted request.
    #[test]
    fn non_positive_dims_are_refused_typed(
        pairs in valid_pairs(),
        poison_at in 0usize..64,
        poison in -10_000i64..1,
        poison_width in 0u8..2,
        name in name(),
    ) {
        let mut pairs = pairs;
        let at = poison_at % pairs.len();
        if poison_width == 0 {
            pairs[at].0 = poison;
        } else {
            pairs[at].1 = poison;
        }
        let dims = Dims::from_vec_unchecked(pairs);
        let line = query_line("query", &name, "dims", dims.to_value());
        let err = parse_request(&line).expect_err("non-positive dims must be refused");
        prop_assert_eq!(err.kind, ErrorKind::OutOfBounds);
    }
}
