//! Process-level tests of the real `mps-serve` binary: the oversized
//! request-line defense over actual TCP, and the `convert` subcommand
//! round-tripping artifacts between `mps-v1` JSON and `mps-v2` binary.
#![cfg(feature = "serde")]

use mps_core::{GeneratorConfig, MpsGenerator, MultiPlacementStructure};
use mps_netlist::benchmarks;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

/// A fresh scratch directory plus the server's artifact for it.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mps-serve-proc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_structure(seed: u64) -> MultiPlacementStructure {
    let circuit = benchmarks::circ01();
    let config = GeneratorConfig::builder()
        .outer_iterations(30)
        .inner_iterations(30)
        .seed(seed)
        .build();
    MpsGenerator::new(&circuit, config).generate().unwrap()
}

/// Spawns the real server binary on an ephemeral port and returns the
/// child plus the announced address.
fn spawn_server(dir: &std::path::Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mps-serve"))
        .arg(dir)
        .args(["--tcp", "0", "--shards", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("the mps-serve binary spawns");
    let stdout = child.stdout.as_mut().expect("stdout is piped");
    let mut announce = String::new();
    BufReader::new(stdout).read_line(&mut announce).unwrap();
    let addr = announce
        .split("\"addr\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or_else(|| panic!("no addr in announce line: {announce}"))
        .to_owned();
    (child, addr)
}

/// Regression for the oversized-line path (`MAX_LINE_BYTES` in
/// `crates/serve/src/shard.rs`): a 9 MiB line with a valid request
/// smuggled behind it must never garble the protocol. The server
/// refuses the line and closes the connection — the smuggled request is
/// never answered — and a fresh connection serves normally.
#[test]
fn oversized_line_closes_the_connection_without_garbling() {
    let dir = scratch_dir("oversize");
    tiny_structure(21)
        .save_json(dir.join("circ01.json"))
        .unwrap();
    let (mut child, addr) = spawn_server(&dir);

    let attack = TcpStream::connect(&addr).unwrap();
    let mut read_half = attack.try_clone().unwrap();
    // Write from a helper thread: once the server gives up on the line
    // it stops reading and closes, so the tail of the write may fail
    // with EPIPE/ECONNRESET — expected, not a test failure.
    let writer = std::thread::spawn(move || {
        let mut attack = attack;
        let chunk = vec![b'x'; 64 * 1024];
        for _ in 0..(9 * 1024 * 1024 / chunk.len()) {
            if attack.write_all(&chunk).is_err() {
                return;
            }
        }
        // The smuggled request: if the server ever answered this, the
        // oversize path would have desynchronized the stream.
        let _ = attack.write_all(b"\n{\"kind\":\"list_structures\"}\n");
        let _ = attack.flush();
    });
    // Drain everything the server says before closing. Depending on
    // how fast the reset lands, the typed error line may or may not
    // survive the trip — but a successful answer must never appear.
    let mut response = Vec::new();
    let _ = read_half.read_to_end(&mut response);
    writer.join().unwrap();
    let text = String::from_utf8_lossy(&response);
    assert!(
        !text.contains("\"ok\":true"),
        "no request on the poisoned connection may succeed: {text}"
    );
    for line in text.lines().filter(|l| !l.is_empty()) {
        assert!(
            line.contains("exceeds"),
            "the only permissible response is the typed oversize error: {line}"
        );
    }

    // The refused connection cost the server nothing: a fresh
    // connection gets clean answers.
    let mut fresh = TcpStream::connect(&addr).unwrap();
    fresh
        .write_all(b"{\"kind\":\"list_structures\"}\n")
        .unwrap();
    let mut reader = BufReader::new(fresh.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("\"ok\":true") && line.contains("circ01"),
        "fresh connection must serve normally: {line}"
    );

    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `mps-serve convert` round-trips an artifact both directions, and the
/// JSON that comes back is byte-identical to the original save.
#[test]
fn convert_subcommand_roundtrips_both_directions() {
    let dir = scratch_dir("convert");
    let mps = tiny_structure(22);
    let json_path = dir.join("circ01.json");
    let bin_path = dir.join("circ01.mpsb");
    let back_path = dir.join("circ01_back.json");
    mps.save_json(&json_path).unwrap();

    let convert = |from: &std::path::Path, to: &std::path::Path| {
        let status = Command::new(env!("CARGO_BIN_EXE_mps-serve"))
            .arg("convert")
            .arg(from)
            .arg(to)
            .stderr(Stdio::null())
            .status()
            .unwrap();
        assert!(status.success(), "convert {from:?} -> {to:?} failed");
    };
    convert(&json_path, &bin_path);
    convert(&bin_path, &back_path);

    let original = std::fs::read(&json_path).unwrap();
    let roundtripped = std::fs::read(&back_path).unwrap();
    assert_eq!(
        original, roundtripped,
        "JSON -> binary -> JSON must re-serialize byte-identically"
    );
    let binary = std::fs::read(&bin_path).unwrap();
    assert!(binary.starts_with(b"MPSB"), "the binary artifact is mps-v2");
    assert!(
        binary.len() * 3 <= original.len(),
        "binary should be at least 3x smaller ({} vs {} bytes)",
        binary.len(),
        original.len()
    );
    // And the loaded-back structure answers identically.
    let back = MultiPlacementStructure::load_auto(&back_path).unwrap();
    assert_eq!(back.to_json(), mps.to_json());

    // Bad inputs fail loudly, not silently.
    let status = Command::new(env!("CARGO_BIN_EXE_mps-serve"))
        .arg("convert")
        .arg(dir.join("missing.json"))
        .arg(dir.join("out.mpsb"))
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert!(!status.success(), "converting a missing file must fail");

    let _ = std::fs::remove_dir_all(&dir);
}
