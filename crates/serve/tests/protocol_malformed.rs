//! Malformed-request battery for the serve protocol, mirroring the
//! mutant style of `tests/persist_format.rs`: every bad input — from
//! truncated JSON to semantically wrong dimension vectors — must be
//! answered with a single typed error line, the server must keep
//! serving afterwards, and nothing may panic or kill the process.
#![cfg(feature = "serde")]

use mps_core::{GeneratorConfig, MpsGenerator};
use mps_netlist::benchmarks;
use mps_serve::{ServedStructure, Server, StructureRegistry};
use serde::Value;
use std::sync::Arc;

/// A server over one in-memory circ01 structure (4 blocks).
fn test_server() -> Server {
    let circuit = benchmarks::circ01();
    let config = GeneratorConfig::builder()
        .outer_iterations(30)
        .inner_iterations(30)
        .seed(23)
        .build();
    let mps = MpsGenerator::new(&circuit, config).generate().unwrap();
    let registry = StructureRegistry::in_memory();
    registry.publish(ServedStructure::from_structure("circ01", mps));
    Server::new(Arc::new(registry), 1)
}

/// Asserts the response line is `{"ok":false}` with the expected typed
/// error kind and a non-empty message.
fn assert_error(response: &str, expected_kind: &str, input: &str) {
    let value: Value = serde_json::parse(response)
        .unwrap_or_else(|e| panic!("unparsable response for input {input:?}: {e}"));
    assert_eq!(
        value.get("ok").and_then(Value::as_bool),
        Some(false),
        "input {input:?} must be refused, got {response}"
    );
    let error = value
        .get("error")
        .unwrap_or_else(|| panic!("input {input:?}: refusal carries no `error` member"));
    assert_eq!(
        error.get("kind").and_then(Value::as_str),
        Some(expected_kind),
        "input {input:?}: wrong error kind in {response}"
    );
    assert!(
        error
            .get("message")
            .and_then(Value::as_str)
            .is_some_and(|m| !m.is_empty()),
        "input {input:?}: refusal carries no message"
    );
}

/// The battery: (bad line, expected typed error kind). circ01 has 4
/// blocks, so 4 pairs is the correct arity.
fn battery() -> Vec<(String, &'static str)> {
    let good_query =
        r#"{"kind":"query","structure":"circ01","dims":[[20,20],[20,20],[20,20],[20,20]]}"#;
    let mut cases: Vec<(String, &'static str)> = vec![
        // --- not JSON at all / truncated ---
        ("not json".into(), "parse"),
        ("{".into(), "parse"),
        (r#"{"kind":"#.into(), "parse"),
        (r#"{"kind":"query""#.into(), "parse"),
        (format!("{} trailing garbage", good_query), "parse"),
        ("\u{7f}".into(), "parse"),
        // deeply nested input trips the parser's depth cap, not the stack
        (format!("{}{}", "[".repeat(4_000), "]".repeat(4_000)), "parse"),
        // --- valid JSON, wrong shape ---
        ("[1,2,3]".into(), "protocol"),
        ("42".into(), "protocol"),
        ("\"query\"".into(), "protocol"),
        ("{}".into(), "protocol"),
        (r#"{"kind":17}"#.into(), "protocol"),
        (r#"{"kind":"query"}"#.into(), "protocol"),
        (r#"{"kind":"query","structure":"circ01"}"#.into(), "protocol"),
        (r#"{"kind":"query","structure":7,"dims":[[1,2]]}"#.into(), "protocol"),
        (r#"{"kind":"query","structure":"circ01","dims":7}"#.into(), "protocol"),
        (r#"{"kind":"query","structure":"circ01","dims":[7]}"#.into(), "protocol"),
        // wrong pair arity: a [w, h] pair must hold exactly two values
        (r#"{"kind":"query","structure":"circ01","dims":[[1,2,3]]}"#.into(), "protocol"),
        (r#"{"kind":"query","structure":"circ01","dims":[[1]]}"#.into(), "protocol"),
        (r#"{"kind":"query","structure":"circ01","dims":[[1.5,2]]}"#.into(), "protocol"),
        (r#"{"kind":"query","structure":"circ01","dims":[["20","20"]]}"#.into(), "protocol"),
        (r#"{"kind":"batch_query","structure":"circ01"}"#.into(), "protocol"),
        (r#"{"kind":"batch_query","structure":"circ01","dims_list":7}"#.into(), "protocol"),
        (r#"{"kind":"batch_query","structure":"circ01","dims_list":[7]}"#.into(), "protocol"),
        // --- unknown request kind ---
        (r#"{"kind":"frobnicate"}"#.into(), "unknown_kind"),
        (r#"{"kind":"QUERY"}"#.into(), "unknown_kind"),
        (r#"{"kind":""}"#.into(), "unknown_kind"),
        // --- unknown structure ---
        (r#"{"kind":"query","structure":"nonexistent","dims":[[20,20]]}"#.into(), "unknown_structure"),
        (r#"{"kind":"instantiate","structure":"","dims":[[20,20]]}"#.into(), "unknown_structure"),
        // --- wrong vector arity (circ01 has 4 blocks) ---
        (r#"{"kind":"query","structure":"circ01","dims":[[20,20]]}"#.into(), "bad_arity"),
        (r#"{"kind":"query","structure":"circ01","dims":[]}"#.into(), "bad_arity"),
        (
            r#"{"kind":"batch_query","structure":"circ01","dims_list":[[[20,20],[20,20],[20,20],[20,20]],[[20,20]]]}"#.into(),
            "bad_arity",
        ),
        (r#"{"kind":"instantiate","structure":"circ01","dims":[[20,20],[20,20]]}"#.into(), "bad_arity"),
        // --- out-of-bounds dims (instantiation refuses: the fallback
        //     packing guarantees legality only inside the bounds) ---
        (
            r#"{"kind":"instantiate","structure":"circ01","dims":[[1000000,20],[20,20],[20,20],[20,20]]}"#.into(),
            "out_of_bounds",
        ),
        (
            r#"{"kind":"instantiate","structure":"circ01","dims":[[20,-3],[20,20],[20,20],[20,20]]}"#.into(),
            "out_of_bounds",
        ),
        // --- tagged-request framing: ill-formed `id` members ---
        (r#"{"id":"seven","kind":"stats"}"#.into(), "bad_id"),
        (r#"{"id":1.5,"kind":"stats"}"#.into(), "bad_id"),
        (r#"{"id":-3,"kind":"stats"}"#.into(), "bad_id"),
        (r#"{"id":null,"kind":"stats"}"#.into(), "bad_id"),
        (r#"{"id":true,"kind":"list_structures"}"#.into(), "bad_id"),
        (r#"{"id":[7],"kind":"stats"}"#.into(), "bad_id"),
        (
            r#"{"id":{"n":7},"kind":"query","structure":"circ01","dims":[[20,20],[20,20],[20,20],[20,20]]}"#.into(),
            "bad_id",
        ),
    ];
    // Null bytes and long lines are answered, not fatal.
    cases.push((format!("{}\u{0}", good_query), "parse"));
    cases.push(("x".repeat(1 << 20), "parse"));
    cases
}

#[test]
fn every_malformed_request_gets_one_typed_error_line() {
    let server = test_server();
    for (input, expected_kind) in battery() {
        let response = server
            .handle_line(&input)
            .unwrap_or_else(|| panic!("no response for malformed input {input:?}"));
        assert_error(&response, expected_kind, &input);
    }
}

#[test]
fn server_survives_the_whole_battery_and_still_answers() {
    let server = test_server();
    let battery = battery();
    let battery_len = battery.len() as u64;
    for (input, _) in battery {
        let _ = server.handle_line(&input);
    }
    // After every mutant: a good query still gets a correct answer ...
    let served = server.registry().get("circ01").unwrap();
    let dims: mps_geom::Dims = served
        .structure()
        .bounds()
        .iter()
        .map(|b| (b.w.midpoint(), b.h.midpoint()))
        .collect();
    let pairs: Vec<String> = dims.iter().map(|(w, h)| format!("[{w},{h}]")).collect();
    let line = format!(
        r#"{{"kind":"query","structure":"circ01","dims":[{}]}}"#,
        pairs.join(",")
    );
    let response = server.handle_line(&line).unwrap();
    let value = serde_json::parse(&response).unwrap();
    assert_eq!(value.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(
        value.get("id").and_then(Value::as_u64),
        served.structure().query(&dims).map(|id| u64::from(id.0))
    );
    // ... and stats counted every refused line as an error.
    let stats = server.handle_line(r#"{"kind":"stats"}"#).unwrap();
    let stats = serde_json::parse(&stats).unwrap();
    assert_eq!(
        stats
            .get("counters")
            .and_then(|c| c.get("errors"))
            .and_then(Value::as_u64),
        Some(battery_len)
    );
}

/// The tagged-framing rules are per-connection state, so they are
/// exercised through a scripted `serve` stream rather than the
/// stateless per-line battery: duplicate ids, decreasing ids, and
/// untagged requests after the connection went tagged are each one
/// typed `bad_id` error — and the connection keeps serving.
#[test]
fn tagged_framing_violations_are_refused_without_killing_the_connection() {
    let server = test_server();
    let input = concat!(
        "{\"id\":10,\"kind\":\"list_structures\"}\n",
        "{\"id\":10,\"kind\":\"stats\"}\n", // duplicate id
        "{\"id\":4,\"kind\":\"stats\"}\n",  // decreasing id
        "{\"kind\":\"stats\"}\n",           // missing id on a tagged connection
        "{\"id\":11,\"kind\":\"query\",\"structure\":\"nope\",\"dims\":[[1,1]]}\n",
        "{\"id\":12,\"kind\":\"list_structures\"}\n",
    )
    .as_bytes()
    .to_vec();
    let mut output = Vec::new();
    server.serve(&input[..], &mut output).unwrap();
    let lines: Vec<String> = String::from_utf8(output)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(lines.len(), 6, "one response per request line");
    for (i, line) in lines.iter().enumerate().take(4).skip(1) {
        assert_error(line, "bad_id", &format!("scripted line {i}"));
        let value: Value = serde_json::parse(line).unwrap();
        assert_eq!(
            value.get("req"),
            None,
            "framing-level refusals are untagged: echoing the id would \
             collide with the response the id's owner got"
        );
    }
    // A dispatch-level error on an accepted tagged request stays
    // correlatable: the error line echoes the id as `req`.
    let unknown: Value = serde_json::parse(&lines[4]).unwrap();
    assert_eq!(unknown.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(unknown.get("req").and_then(Value::as_u64), Some(11));
    assert_eq!(
        unknown
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str),
        Some("unknown_structure")
    );
    // ... and the connection still answers afterwards.
    let last: Value = serde_json::parse(&lines[5]).unwrap();
    assert_eq!(last.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(last.get("req").and_then(Value::as_u64), Some(12));
}

/// A fresh connection is not poisoned by another connection's tagged
/// mode: framing state is strictly per connection.
#[test]
fn tagged_mode_is_per_connection() {
    let server = test_server();
    let tagged = b"{\"id\":1,\"kind\":\"stats\"}\n".to_vec();
    let mut output = Vec::new();
    server.serve(&tagged[..], &mut output).unwrap();
    // A second connection may still speak untagged.
    let untagged = b"{\"kind\":\"stats\"}\n".to_vec();
    let mut output = Vec::new();
    server.serve(&untagged[..], &mut output).unwrap();
    let value: Value = serde_json::parse(String::from_utf8(output).unwrap().trim()).unwrap();
    assert_eq!(value.get("ok").and_then(Value::as_bool), Some(true));
}

#[test]
fn out_of_bounds_query_answers_null_not_error() {
    // Queries (unlike instantiation) answer uncovered/out-of-bounds
    // space with `id: null` — that *is* the structure's answer.
    let server = test_server();
    let response = server
        .handle_line(
            r#"{"kind":"query","structure":"circ01","dims":[[1000000,20],[20,20],[20,20],[20,20]]}"#,
        )
        .unwrap();
    let value = serde_json::parse(&response).unwrap();
    assert_eq!(value.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(value.get("id"), Some(&Value::Null));
}
