//! Table 2, `Instantiation` column: time to instantiate one placement
//! from a pre-generated multi-placement structure, per benchmark circuit.
//!
//! The paper reports 0.07–0.15 s on a 2005 SUN Blade 1000; the shape to
//! verify is that instantiation is orders of magnitude below a per-query
//! placement run and grows only mildly with circuit size.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mps_bench::{random_dims, scaled_config};
use mps_core::MpsGenerator;
use mps_netlist::benchmarks;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_instantiation(c: &mut Criterion) {
    let mut group = c.benchmark_group("instantiation");
    for bm in benchmarks::all() {
        let circuit = bm.circuit.clone();
        let mps = MpsGenerator::new(&circuit, scaled_config(&circuit, 0.4, 9))
            .generate()
            .expect("valid circuit");
        let mut rng = StdRng::seed_from_u64(7);
        group.bench_function(BenchmarkId::from_parameter(bm.name), |b| {
            b.iter_batched(
                || random_dims(&circuit, &mut rng),
                |dims| black_box(mps.instantiate_or_fallback(black_box(&dims))),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_instantiation);
criterion_main!(benches);
