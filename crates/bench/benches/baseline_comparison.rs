//! Ablation A1 (the paper's §1 motivation): per-query placement cost of
//! the three method classes on the two-stage opamp —
//!
//! * multi-placement structure instantiation (this paper),
//! * fixed template instantiation (BALLISTIC/MOGLAN class),
//! * flat simulated-annealing placement (KOAN/ANAGRAM class).
//!
//! The shape to verify: MPS within a small factor of the template, both
//! orders of magnitude faster than the flat SA run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mps_bench::{random_dims, scaled_config};
use mps_core::MpsGenerator;
use mps_netlist::benchmarks;
use mps_placer::{SaPlacer, SaPlacerConfig, Template};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_baselines(c: &mut Criterion) {
    let circuit = benchmarks::two_stage_opamp();
    let mps = MpsGenerator::new(&circuit, scaled_config(&circuit, 0.5, 21))
        .generate()
        .expect("valid circuit");
    let template = Template::expert_default(&circuit, 6);

    let mut group = c.benchmark_group("per_query_placement");
    let mut rng = StdRng::seed_from_u64(3);
    group.bench_function("mps_instantiate", |b| {
        b.iter_batched(
            || random_dims(&circuit, &mut rng),
            |dims| black_box(mps.instantiate_or_fallback(&dims)),
            BatchSize::SmallInput,
        );
    });
    let mut rng = StdRng::seed_from_u64(3);
    group.bench_function("template_instantiate", |b| {
        b.iter_batched(
            || random_dims(&circuit, &mut rng),
            |dims| black_box(template.instantiate(&dims)),
            BatchSize::SmallInput,
        );
    });
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    let sa = SaPlacer::new(
        &circuit,
        SaPlacerConfig {
            iterations: 5_000,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(3);
    let mut seed = 0u64;
    group.bench_function("flat_sa_place", |b| {
        b.iter_batched(
            || {
                seed += 1;
                (random_dims(&circuit, &mut rng), seed)
            },
            |(dims, s)| black_box(sa.place(&dims, s)),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
