//! Table 2, `CPU Generation Time` column: one-time generation cost of the
//! multi-placement structure, per benchmark circuit (reduced budget so the
//! bench suite stays runnable; the `table2` binary measures the full
//! budget).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode};
use mps_bench::scaled_config;
use mps_core::MpsGenerator;
use mps_netlist::benchmarks;
use std::hint::black_box;
use std::time::Duration;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group
        .sample_size(10)
        .sampling_mode(SamplingMode::Flat)
        .measurement_time(Duration::from_secs(8));
    // The three paper size classes: small (4), medium (8), large (21).
    for name in ["circ01", "circ08", "tso-cascode"] {
        let bm = benchmarks::by_name(name).expect("known benchmark");
        let circuit = bm.circuit.clone();
        let config = scaled_config(&circuit, 0.15, 3);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mps = MpsGenerator::new(&circuit, config.clone())
                    .generate()
                    .expect("valid circuit");
                black_box(mps.placement_count())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
