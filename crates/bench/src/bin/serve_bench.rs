//! Serving-throughput baseline: the compiled query plan versus the
//! structure's own query path, measured on uniform and hot-spot query
//! streams over a circ02-sized structure. Writes `out/BENCH_serve.json`
//! — the perf-trajectory artifact CI records from every run.
//!
//! ```sh
//! cargo run --release -p mps-bench --bin serve_bench -- \
//!     [--effort F] [--queries N] [--hot FRAC] [--min-speedup S] \
//!     [--circuit NAME] [--save DIR | --load DIR] [--starts K] [--threads T] \
//!     [--index-scaling] [--min-flat-scaling R] [--scaling-budget-secs T]
//! ```
//!
//! Engines measured on each stream:
//!
//! * `baseline` — `MultiPlacementStructure::query` (allocates a candidate
//!   vector per call);
//! * `scratch`  — `query_with_scratch` (same interval-row walk, reused
//!   candidate buffer);
//! * `compiled` — `CompiledQueryIndex::query_with_scratch` (the v1 plan:
//!   flattened arrays + full-width bitset AND, zero allocation per query);
//! * `compiled_v2` — the v2 pivot/bucket/center plan with sparse live-word
//!   intersection (`CompiledQueryIndexV2`).
//!
//! With `--min-speedup S` the run fails (exit 1) unless the compiled
//! engine beats `baseline` by at least `S`× QPS on the uniform stream —
//! CI passes 2 per the serving subsystem's acceptance bar.
//!
//! With `--index-scaling` the run additionally measures how each compiled
//! plan's throughput degrades with region count: synthetic grid structures
//! over a fixed ladder circuit at 1x/3x/10x the base region count, both
//! plans verified bit-identical and measured on the same uniform stream.
//! The section lands under `"index_scaling"` in `out/BENCH_serve.json`.
//! `--min-flat-scaling R` gates the run (exit 1) unless the v2 plan keeps
//! at least `R`× its 1x QPS at 10x regions — CI passes 0.7. If corpus
//! construction exceeds `--scaling-budget-secs` (default 120) the section
//! self-skips with a warning instead of failing the run.

use mps_bench::cli::{arg_value, obtain_structure, BenchArgs, StructureSource};
use mps_bench::{fmt_duration, markdown_table, random_dims, write_artifact};
use mps_core::{grid_structure, MultiPlacementStructure, PlacementId};
use mps_geom::Dims;
use mps_netlist::{benchmarks, modgen};
use mps_serve::{CompiledIndex, CompiledQueryIndex, IndexPlan, QueryScratch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Map, Serialize, Value};
use std::time::{Duration, Instant};

/// Queries sampled for per-query latency percentiles (QPS is measured
/// over the whole stream without per-query clocking).
const LATENCY_SAMPLES: usize = 20_000;

struct EngineResult {
    name: &'static str,
    qps: f64,
    p50: Duration,
    p99: Duration,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Measures one engine over a stream: a warm-up + full-stream QPS pass
/// (no per-query clocking), then an instrumented pass over a sample for
/// p50/p99.
fn measure<F>(name: &'static str, stream: &[Dims], mut engine: F) -> EngineResult
where
    F: FnMut(&Dims) -> Option<PlacementId>,
{
    let mut sink = 0usize;
    for dims in stream.iter().take(stream.len() / 10) {
        sink = sink.wrapping_add(usize::from(engine(dims).is_some()));
    }
    let start = Instant::now();
    for dims in stream {
        sink = sink.wrapping_add(usize::from(engine(dims).is_some()));
    }
    let elapsed = start.elapsed();
    let qps = stream.len() as f64 / elapsed.as_secs_f64();

    let mut latencies: Vec<Duration> = stream
        .iter()
        .take(LATENCY_SAMPLES)
        .map(|dims| {
            let t = Instant::now();
            sink = sink.wrapping_add(usize::from(engine(dims).is_some()));
            t.elapsed()
        })
        .collect();
    latencies.sort_unstable();
    assert!(sink < usize::MAX, "keep the sink observable");
    EngineResult {
        name,
        qps,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
    }
}

/// A hot-spot stream: `hot_fraction` of the probes cycle through 16
/// fixed vectors (the synthesis-loop pattern: an optimizer hammering the
/// same sizing neighborhood), the rest stay uniform.
fn hotspot_stream(
    uniform: &[Dims],
    mps: &MultiPlacementStructure,
    hot_fraction: f64,
    seed: u64,
) -> Vec<Dims> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Prefer covered vectors as hot spots so the hot path exercises full
    // intersections, not early misses.
    let mut hot: Vec<&Dims> = uniform
        .iter()
        .filter(|d| mps.query(d).is_some())
        .take(16)
        .collect();
    if hot.is_empty() {
        hot = uniform.iter().take(16).collect();
    }
    (0..uniform.len())
        .map(|k| {
            if rng.random_range(0.0..1.0) < hot_fraction {
                hot[k % hot.len()].clone()
            } else {
                uniform[k].clone()
            }
        })
        .collect()
}

/// Whether a bare `--name` flag is present on the command line.
fn flag_present(name: &str) -> bool {
    let flag = format!("--{name}");
    std::env::args().any(|a| a == flag)
}

/// Region-count multipliers for the scaling sweep. The base level targets
/// [`SCALING_BASE_REGIONS`] (the serving benchmarks sit around a few
/// hundred regions today); later levels target exact multiples of the
/// base level's *actual* count, so the 10x label means 10x.
const SCALING_MULTIPLIERS: [(&str, usize); 3] = [("1x", 1), ("3x", 3), ("10x", 10)];

/// Region target of the scaling sweep's base level.
const SCALING_BASE_REGIONS: usize = 400;

struct ScalingOutcome {
    section: Value,
    /// v2 QPS at the top level over v2 QPS at the base level (`None` when
    /// the sweep self-skipped).
    v2_ratio: Option<f64>,
}

/// Measures both compiled plans over synthetic grid structures whose only
/// difference is region count, answering: how flat does lookup cost stay
/// as the corpus grows 10x?
fn index_scaling(queries: usize, budget: Duration) -> ScalingOutcome {
    // A fixed small circuit: scaling must come from region count alone,
    // not arity, so every level shares these 6 blocks / 12 axes.
    let (circuit, _model) = modgen::ladder_circuit(3, 1.0);
    let mut rng = StdRng::seed_from_u64(0x5CA1E);
    let stream: Vec<Dims> = (0..queries.max(1))
        .map(|_| random_dims(&circuit, &mut rng))
        .collect();

    let started = Instant::now();
    let base_regions = grid_structure(&circuit, SCALING_BASE_REGIONS, 0x77).placement_count();
    let mut levels = Vec::new();
    let mut rows = Vec::new();
    let mut qps_by_plan: Vec<(f64, f64)> = Vec::new();
    let mut skipped = false;
    for (label, multiplier) in SCALING_MULTIPLIERS {
        let target = base_regions * multiplier;
        if started.elapsed() > budget {
            eprintln!(
                "warning: index-scaling corpus exceeded the {}s budget at level {label}; \
                 skipping the rest of the sweep (gate not enforced)",
                budget.as_secs()
            );
            skipped = true;
            break;
        }
        let mps = grid_structure(&circuit, target, 0x77 ^ target as u64);
        let v1 = CompiledIndex::build(&mps, IndexPlan::V1);
        let v2 = CompiledIndex::build(&mps, IndexPlan::V2);
        for (plan, idx) in [("v1", &v1), ("v2", &v2)] {
            idx.verify_against(&mps, 2_000, 0xF1A7 ^ target as u64)
                .unwrap_or_else(|e| panic!("{plan} plan diverged at {label}: {e}"));
        }
        let mut scratch = QueryScratch::new();
        let r1 = measure("v1", &stream, |d| v1.query_with_scratch(d, &mut scratch));
        let r2 = measure("v2", &stream, |d| v2.query_with_scratch(d, &mut scratch));
        qps_by_plan.push((r1.qps, r2.qps));

        let mut level = Map::new();
        level.insert("label", Value::String(label.to_owned()));
        level.insert("target_regions", target.to_value());
        level.insert("regions", mps.placement_count().to_value());
        level.insert("segments", v1.segment_count().to_value());
        for (plan, idx, r) in [("v1", &v1, &r1), ("v2", &v2, &r2)] {
            let mut p = engine_value(r);
            if let Value::Object(m) = &mut p {
                m.insert("heap_bytes", idx.heap_bytes().to_value());
            }
            level.insert(plan, p);
        }
        levels.push(Value::Object(level));
        for r in [&r1, &r2] {
            rows.push(vec![
                label.to_owned(),
                mps.placement_count().to_string(),
                r.name.to_owned(),
                format!("{:.0}", r.qps),
                format!("{:?}", r.p50),
                format!("{:?}", r.p99),
            ]);
        }
    }

    println!("\nIndex scaling (ladder circuit, {queries} uniform queries per level)");
    println!(
        "{}",
        markdown_table(&["Level", "Regions", "Plan", "QPS", "p50", "p99"], &rows)
    );

    let ratio = |pick: fn(&(f64, f64)) -> f64| -> Option<f64> {
        match (qps_by_plan.first(), qps_by_plan.last()) {
            (Some(first), Some(last)) if qps_by_plan.len() == SCALING_MULTIPLIERS.len() => {
                Some(pick(last) / pick(first))
            }
            _ => None,
        }
    };
    let v1_ratio = ratio(|q| q.0);
    let v2_ratio = ratio(|q| q.1);
    if let (Some(r1), Some(r2)) = (v1_ratio, v2_ratio) {
        println!(
            "QPS retained at 10x regions: v1 {:.2}x, v2 {:.2}x\n",
            r1, r2
        );
    }

    let mut section = Map::new();
    section.insert("circuit", Value::String("ladder(rungs=3)".to_owned()));
    section.insert("queries_per_level", queries.to_value());
    section.insert("levels", Value::Array(levels));
    section.insert(
        "v1_qps_ratio_10x_vs_1x",
        v1_ratio.map_or(Value::Null, |r| ((r * 1000.0).round() / 1000.0).to_value()),
    );
    section.insert(
        "v2_qps_ratio_10x_vs_1x",
        v2_ratio.map_or(Value::Null, |r| ((r * 1000.0).round() / 1000.0).to_value()),
    );
    section.insert("skipped", Value::Bool(skipped));
    ScalingOutcome {
        section: Value::Object(section),
        v2_ratio,
    }
}

fn engine_value(r: &EngineResult) -> Value {
    let mut m = Map::new();
    m.insert("qps", r.qps.round().to_value());
    m.insert(
        "p50_ns",
        u64::try_from(r.p50.as_nanos())
            .unwrap_or(u64::MAX)
            .to_value(),
    );
    m.insert(
        "p99_ns",
        u64::try_from(r.p99.as_nanos())
            .unwrap_or(u64::MAX)
            .to_value(),
    );
    m.insert(
        "allocations_per_query",
        match r.name {
            "baseline" => Value::String("per-call candidate vector".to_owned()),
            _ => Value::String("zero (reused scratch)".to_owned()),
        },
    );
    Value::Object(m)
}

fn main() {
    let args = BenchArgs::parse();
    let effort = args.effort;
    let queries: usize = arg_value("queries").unwrap_or(100_000);
    let hot_fraction: f64 = arg_value("hot").unwrap_or(0.9);
    let min_speedup: f64 = arg_value("min-speedup").unwrap_or(0.0);
    let circuit_name: String = arg_value("circuit").unwrap_or_else(|| "circ02".to_owned());
    let scaling = flag_present("index-scaling");
    let min_flat_scaling: f64 = arg_value("min-flat-scaling").unwrap_or(0.0);
    let scaling_budget = Duration::from_secs(arg_value("scaling-budget-secs").unwrap_or(120));

    let Some(bm) = benchmarks::by_name(&circuit_name) else {
        eprintln!("error: unknown benchmark circuit `{circuit_name}`");
        std::process::exit(2);
    };
    eprintln!("generating {circuit_name} structure (effort {effort}) ...");
    let config = args.config_for(&bm.circuit, 20050307);
    let (mps, source) = obtain_structure(bm.name, &bm.circuit, config, &args.persist);
    eprintln!(
        "  {} placements, {:.1}% coverage{}",
        mps.placement_count(),
        100.0 * mps.coverage(),
        match &source {
            StructureSource::Generated(r) => format!(", generated in {}", fmt_duration(r.duration)),
            StructureSource::Loaded(p) => format!(", loaded from {}", p.display()),
        }
    );

    eprintln!("compiling query index ...");
    let index = CompiledQueryIndex::build(&mps);
    eprintln!(
        "  v1: {} segments, {} bitset word(s), {} bytes",
        index.segment_count(),
        index.bitset_words(),
        index.heap_bytes()
    );
    let index_v2 = CompiledIndex::build(&mps, IndexPlan::V2);
    eprintln!(
        "  v2: {} bytes ({} would be chosen at load time)",
        index_v2.heap_bytes(),
        IndexPlan::choose(&mps)
    );
    // The differential contract, re-proven for both plans on this exact
    // structure before anything is timed: 10,000 probes each,
    // bit-identical answers.
    index
        .verify_against(&mps, 10_000, 0xBE9C)
        .expect("compiled index must answer bit-identically to query");
    index_v2
        .verify_against(&mps, 10_000, 0xBE9C)
        .expect("v2 index must answer bit-identically to query");

    let mut rng = StdRng::seed_from_u64(0x5EED ^ 20050307);
    let uniform: Vec<Dims> = (0..queries.max(1))
        .map(|_| random_dims(&bm.circuit, &mut rng))
        .collect();
    let hotspot = hotspot_stream(&uniform, &mps, hot_fraction, 0x1407);

    let mut streams = Map::new();
    let mut rows = Vec::new();
    let mut uniform_speedup = 0.0;
    for (stream_name, stream) in [("uniform", &uniform), ("hotspot", &hotspot)] {
        let mut scratch_u32 = Vec::new();
        let mut scratch_bits = QueryScratch::new();
        let results = [
            measure("baseline", stream, |d| mps.query(d)),
            measure("scratch", stream, |d| {
                mps.query_with_scratch(d, &mut scratch_u32)
            }),
            measure("compiled", stream, |d| {
                index.query_with_scratch(d, &mut scratch_bits)
            }),
            measure("compiled_v2", stream, |d| {
                index_v2.query_with_scratch(d, &mut scratch_bits)
            }),
        ];
        let speedup = results[2].qps / results[0].qps;
        if stream_name == "uniform" {
            uniform_speedup = speedup;
        }
        let mut engines = Map::new();
        for r in &results {
            engines.insert(r.name, engine_value(r));
        }
        let mut s = Map::new();
        s.insert("engines", Value::Object(engines));
        s.insert(
            "speedup_compiled_vs_baseline",
            ((speedup * 100.0).round() / 100.0).to_value(),
        );
        streams.insert(stream_name, Value::Object(s));
        for r in &results {
            rows.push(vec![
                stream_name.to_owned(),
                r.name.to_owned(),
                format!("{:.0}", r.qps),
                format!("{:?}", r.p50),
                format!("{:?}", r.p99),
                format!("{:.2}x", r.qps / results[0].qps),
            ]);
        }
    }

    println!("\nServing throughput ({circuit_name}, {queries} queries per stream)");
    println!(
        "{}",
        markdown_table(
            &["Stream", "Engine", "QPS", "p50", "p99", "vs baseline"],
            &rows
        )
    );

    let mut top = Map::new();
    top.insert("bench", Value::String("serve".to_owned()));
    top.insert("circuit", Value::String(circuit_name.clone()));
    top.insert("effort", effort.to_value());
    top.insert("queries_per_stream", queries.to_value());
    top.insert("hot_fraction", hot_fraction.to_value());
    top.insert("placements", mps.placement_count().to_value());
    top.insert("coverage", mps.coverage().to_value());
    top.insert("compiled_segments", index.segment_count().to_value());
    top.insert("compiled_heap_bytes", index.heap_bytes().to_value());
    top.insert("equivalence_probes", 10_000usize.to_value());
    top.insert(
        "index_plan_auto",
        Value::String(IndexPlan::choose(&mps).as_str().to_owned()),
    );
    top.insert("streams", Value::Object(streams));
    let scaling_outcome = scaling.then(|| index_scaling(queries, scaling_budget));
    if let Some(outcome) = &scaling_outcome {
        top.insert("index_scaling", outcome.section.clone());
    }
    let path = write_artifact(
        "BENCH_serve.json",
        &serde_json::to_string_pretty(&Value::Object(top)).expect("value trees serialize"),
    );
    eprintln!("wrote {}", path.display());

    if min_speedup > 0.0 && uniform_speedup < min_speedup {
        eprintln!(
            "error: compiled index QPS speedup {uniform_speedup:.2}x on the uniform stream \
             is below the required {min_speedup}x"
        );
        std::process::exit(1);
    }
    if min_flat_scaling > 0.0 {
        match scaling_outcome.as_ref().and_then(|o| o.v2_ratio) {
            Some(ratio) if ratio < min_flat_scaling => {
                eprintln!(
                    "error: v2 plan retains only {ratio:.2}x of its 1x QPS at 10x regions, \
                     below the required {min_flat_scaling}x"
                );
                std::process::exit(1);
            }
            Some(_) => {}
            None => eprintln!(
                "warning: --min-flat-scaling given but no complete scaling sweep ran \
                 (pass --index-scaling; the sweep may also have self-skipped on budget)"
            ),
        }
    }
}
