//! Serving-throughput baseline: the compiled query plan versus the
//! structure's own query path, measured on uniform and hot-spot query
//! streams over a circ02-sized structure. Writes `out/BENCH_serve.json`
//! — the perf-trajectory artifact CI records from every run.
//!
//! ```sh
//! cargo run --release -p mps-bench --bin serve_bench -- \
//!     [--effort F] [--queries N] [--hot FRAC] [--min-speedup S] \
//!     [--circuit NAME] [--save DIR | --load DIR] [--starts K] [--threads T]
//! ```
//!
//! Engines measured on each stream:
//!
//! * `baseline` — `MultiPlacementStructure::query` (allocates a candidate
//!   vector per call);
//! * `scratch`  — `query_with_scratch` (same interval-row walk, reused
//!   candidate buffer);
//! * `compiled` — `CompiledQueryIndex::query_with_scratch` (flattened
//!   arrays + bitset AND, zero allocation per query).
//!
//! With `--min-speedup S` the run fails (exit 1) unless the compiled
//! engine beats `baseline` by at least `S`× QPS on the uniform stream —
//! CI passes 2 per the serving subsystem's acceptance bar.

use mps_bench::cli::{arg_value, obtain_structure, BenchArgs, StructureSource};
use mps_bench::{fmt_duration, markdown_table, random_dims, write_artifact};
use mps_core::{MultiPlacementStructure, PlacementId};
use mps_geom::Dims;
use mps_netlist::benchmarks;
use mps_serve::{CompiledQueryIndex, QueryScratch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Map, Serialize, Value};
use std::time::{Duration, Instant};

/// Queries sampled for per-query latency percentiles (QPS is measured
/// over the whole stream without per-query clocking).
const LATENCY_SAMPLES: usize = 20_000;

struct EngineResult {
    name: &'static str,
    qps: f64,
    p50: Duration,
    p99: Duration,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Measures one engine over a stream: a warm-up + full-stream QPS pass
/// (no per-query clocking), then an instrumented pass over a sample for
/// p50/p99.
fn measure<F>(name: &'static str, stream: &[Dims], mut engine: F) -> EngineResult
where
    F: FnMut(&Dims) -> Option<PlacementId>,
{
    let mut sink = 0usize;
    for dims in stream.iter().take(stream.len() / 10) {
        sink = sink.wrapping_add(usize::from(engine(dims).is_some()));
    }
    let start = Instant::now();
    for dims in stream {
        sink = sink.wrapping_add(usize::from(engine(dims).is_some()));
    }
    let elapsed = start.elapsed();
    let qps = stream.len() as f64 / elapsed.as_secs_f64();

    let mut latencies: Vec<Duration> = stream
        .iter()
        .take(LATENCY_SAMPLES)
        .map(|dims| {
            let t = Instant::now();
            sink = sink.wrapping_add(usize::from(engine(dims).is_some()));
            t.elapsed()
        })
        .collect();
    latencies.sort_unstable();
    assert!(sink < usize::MAX, "keep the sink observable");
    EngineResult {
        name,
        qps,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
    }
}

/// A hot-spot stream: `hot_fraction` of the probes cycle through 16
/// fixed vectors (the synthesis-loop pattern: an optimizer hammering the
/// same sizing neighborhood), the rest stay uniform.
fn hotspot_stream(
    uniform: &[Dims],
    mps: &MultiPlacementStructure,
    hot_fraction: f64,
    seed: u64,
) -> Vec<Dims> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Prefer covered vectors as hot spots so the hot path exercises full
    // intersections, not early misses.
    let mut hot: Vec<&Dims> = uniform
        .iter()
        .filter(|d| mps.query(d).is_some())
        .take(16)
        .collect();
    if hot.is_empty() {
        hot = uniform.iter().take(16).collect();
    }
    (0..uniform.len())
        .map(|k| {
            if rng.random_range(0.0..1.0) < hot_fraction {
                hot[k % hot.len()].clone()
            } else {
                uniform[k].clone()
            }
        })
        .collect()
}

fn engine_value(r: &EngineResult) -> Value {
    let mut m = Map::new();
    m.insert("qps", r.qps.round().to_value());
    m.insert(
        "p50_ns",
        u64::try_from(r.p50.as_nanos())
            .unwrap_or(u64::MAX)
            .to_value(),
    );
    m.insert(
        "p99_ns",
        u64::try_from(r.p99.as_nanos())
            .unwrap_or(u64::MAX)
            .to_value(),
    );
    m.insert(
        "allocations_per_query",
        match r.name {
            "baseline" => Value::String("per-call candidate vector".to_owned()),
            _ => Value::String("zero (reused scratch)".to_owned()),
        },
    );
    Value::Object(m)
}

fn main() {
    let args = BenchArgs::parse();
    let effort = args.effort;
    let queries: usize = arg_value("queries").unwrap_or(100_000);
    let hot_fraction: f64 = arg_value("hot").unwrap_or(0.9);
    let min_speedup: f64 = arg_value("min-speedup").unwrap_or(0.0);
    let circuit_name: String = arg_value("circuit").unwrap_or_else(|| "circ02".to_owned());

    let Some(bm) = benchmarks::by_name(&circuit_name) else {
        eprintln!("error: unknown benchmark circuit `{circuit_name}`");
        std::process::exit(2);
    };
    eprintln!("generating {circuit_name} structure (effort {effort}) ...");
    let config = args.config_for(&bm.circuit, 20050307);
    let (mps, source) = obtain_structure(bm.name, &bm.circuit, config, &args.persist);
    eprintln!(
        "  {} placements, {:.1}% coverage{}",
        mps.placement_count(),
        100.0 * mps.coverage(),
        match &source {
            StructureSource::Generated(r) => format!(", generated in {}", fmt_duration(r.duration)),
            StructureSource::Loaded(p) => format!(", loaded from {}", p.display()),
        }
    );

    eprintln!("compiling query index ...");
    let index = CompiledQueryIndex::build(&mps);
    eprintln!(
        "  {} segments, {} bitset word(s), {} bytes",
        index.segment_count(),
        index.bitset_words(),
        index.heap_bytes()
    );
    // The differential contract, re-proven on this exact structure before
    // anything is timed: 10,000 probes, bit-identical answers.
    index
        .verify_against(&mps, 10_000, 0xBE9C)
        .expect("compiled index must answer bit-identically to query");

    let mut rng = StdRng::seed_from_u64(0x5EED ^ 20050307);
    let uniform: Vec<Dims> = (0..queries.max(1))
        .map(|_| random_dims(&bm.circuit, &mut rng))
        .collect();
    let hotspot = hotspot_stream(&uniform, &mps, hot_fraction, 0x1407);

    let mut streams = Map::new();
    let mut rows = Vec::new();
    let mut uniform_speedup = 0.0;
    for (stream_name, stream) in [("uniform", &uniform), ("hotspot", &hotspot)] {
        let mut scratch_u32 = Vec::new();
        let mut scratch_bits = QueryScratch::new();
        let results = [
            measure("baseline", stream, |d| mps.query(d)),
            measure("scratch", stream, |d| {
                mps.query_with_scratch(d, &mut scratch_u32)
            }),
            measure("compiled", stream, |d| {
                index.query_with_scratch(d, &mut scratch_bits)
            }),
        ];
        let speedup = results[2].qps / results[0].qps;
        if stream_name == "uniform" {
            uniform_speedup = speedup;
        }
        let mut engines = Map::new();
        for r in &results {
            engines.insert(r.name, engine_value(r));
        }
        let mut s = Map::new();
        s.insert("engines", Value::Object(engines));
        s.insert(
            "speedup_compiled_vs_baseline",
            ((speedup * 100.0).round() / 100.0).to_value(),
        );
        streams.insert(stream_name, Value::Object(s));
        for r in &results {
            rows.push(vec![
                stream_name.to_owned(),
                r.name.to_owned(),
                format!("{:.0}", r.qps),
                format!("{:?}", r.p50),
                format!("{:?}", r.p99),
                format!("{:.2}x", r.qps / results[0].qps),
            ]);
        }
    }

    println!("\nServing throughput ({circuit_name}, {queries} queries per stream)");
    println!(
        "{}",
        markdown_table(
            &["Stream", "Engine", "QPS", "p50", "p99", "vs baseline"],
            &rows
        )
    );

    let mut top = Map::new();
    top.insert("bench", Value::String("serve".to_owned()));
    top.insert("circuit", Value::String(circuit_name.clone()));
    top.insert("effort", effort.to_value());
    top.insert("queries_per_stream", queries.to_value());
    top.insert("hot_fraction", hot_fraction.to_value());
    top.insert("placements", mps.placement_count().to_value());
    top.insert("coverage", mps.coverage().to_value());
    top.insert("compiled_segments", index.segment_count().to_value());
    top.insert("compiled_heap_bytes", index.heap_bytes().to_value());
    top.insert("equivalence_probes", 10_000usize.to_value());
    top.insert("streams", Value::Object(streams));
    let path = write_artifact(
        "BENCH_serve.json",
        &serde_json::to_string_pretty(&Value::Object(top)).expect("value trees serialize"),
    );
    eprintln!("wrote {}", path.display());

    if min_speedup > 0.0 && uniform_speedup < min_speedup {
        eprintln!(
            "error: compiled index QPS speedup {uniform_speedup:.2}x on the uniform stream \
             is below the required {min_speedup}x"
        );
        std::process::exit(1);
    }
}
