//! Regenerates Fig. 7: an optimized floorplan instantiation for the
//! 21-module `tso-cascode` benchmark. SVG written to `out/`.

use mps_bench::cli::{obtain_structure, BenchArgs};
use mps_bench::{floorplan_svg, write_artifact};
use mps_netlist::benchmarks;

fn main() {
    let circuit = benchmarks::tso_cascode();
    let args = BenchArgs::parse();
    let config = args.config_for(&circuit, 77);
    let (mps, _) = obtain_structure("fig7_tso_cascode", &circuit, config, &args.persist);
    eprintln!("structure holds {} placements", mps.placement_count());

    // Draw the best stored placement at its best dimensions.
    let best = mps
        .iter()
        .min_by(|a, b| a.1.best_cost.total_cmp(&b.1.best_cost));
    let (dims, placement) = match best {
        Some((_, entry)) => (entry.best_dims.clone(), entry.placement.clone()),
        None => {
            let dims = circuit.min_dims();
            (dims.clone(), mps.instantiate_or_fallback(&dims))
        }
    };
    assert!(placement.is_legal(&dims, None));
    let path = write_artifact(
        "fig7_tso_cascode.svg",
        &floorplan_svg(&circuit, &placement, &dims),
    );
    println!(
        "Fig 7: tso-cascode instantiation ({} blocks) -> {}",
        circuit.block_count(),
        path.display()
    );
}
