//! Regenerates Fig. 5: two different floorplan instantiations of the
//! two-stage opamp from one multi-placement structure (a, b) and the fixed
//! template-based instantiation (c). SVGs are written to `out/`.

use mps_bench::cli::{obtain_structure, BenchArgs};
use mps_bench::{floorplan_svg, write_artifact};
use mps_netlist::benchmarks;
use mps_placer::Template;

fn main() {
    let circuit = benchmarks::two_stage_opamp();
    let args = BenchArgs::parse();
    let config = args.config_for(&circuit, 55);
    let (mps, _) = obtain_structure("fig5_two_stage_opamp", &circuit, config, &args.persist);
    eprintln!("structure holds {} placements", mps.placement_count());

    // Pick two stored placements with genuinely different arrangements and
    // instantiate each at its own best dimensions (two points of the sizing
    // space the synthesis loop could propose).
    let mut entries: Vec<_> = mps.iter().collect();
    entries.sort_by(|a, b| a.1.best_cost.total_cmp(&b.1.best_cost));
    let Some(&(id_a, first)) = entries.first() else {
        eprintln!("empty structure; nothing to draw");
        return;
    };
    let different = entries
        .iter()
        .find(|(id, e)| *id != id_a && e.placement != first.placement);
    let (id_b, second) = different.copied().unwrap_or((id_a, first));

    for (tag, entry) in [("a", first), ("b", second)] {
        let dims = entry.best_dims.clone();
        let placement = mps
            .instantiate(&dims)
            .expect("best dims lie inside the entry's own region");
        assert!(placement.is_legal(&dims, None));
        let path = write_artifact(
            &format!("fig5_{tag}_mps.svg"),
            &floorplan_svg(&circuit, &placement, &dims),
        );
        println!(
            "Fig 5.{tag}: MPS instantiation ({:?}) -> {}",
            if tag == "a" { id_a } else { id_b },
            path.display()
        );
    }

    // Fig 5.c: the fixed expert template at the same sizes as 5.a.
    let template = Template::expert_default(&circuit, 6);
    let dims = first.best_dims.clone();
    let placement = template.instantiate(&dims);
    let path = write_artifact(
        "fig5_c_template.svg",
        &floorplan_svg(&circuit, &placement, &dims),
    );
    println!("Fig 5.c: template instantiation -> {}", path.display());
}
