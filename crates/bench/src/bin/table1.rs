//! Regenerates Table 1: the benchmark suite statistics.

use mps_bench::markdown_table;
use mps_netlist::benchmarks;

fn main() {
    let rows: Vec<Vec<String>> = benchmarks::table1()
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                r.blocks.to_string(),
                r.nets.to_string(),
                r.terminals.to_string(),
            ]
        })
        .collect();
    println!("Table 1: Test Benchmarks");
    println!(
        "{}",
        markdown_table(&["Circuit", "Blocks", "Nets", "Terminals"], &rows)
    );
}
