//! Ablation A3: the generator's design choices on the two-stage opamp.
//!
//! * Eq.-6 range optimization on/off — without it, each stored placement
//!   claims its whole expanded box, so fewer, coarser regions survive and
//!   selected costs drift up.
//! * Fork-on-containment on/off — without forking, containment cuts throw
//!   away the smaller half of the victim's region, losing coverage.
//! * Coverage-target sweep — placements stored and generation effort as a
//!   function of the stopping criterion.

use mps_bench::cli::{effort_from_args, parallel_from_args};
use mps_bench::{fmt_duration, markdown_table, random_dims};
use mps_core::{GeneratorConfig, MpsGenerator};
use mps_netlist::benchmarks;
use mps_placer::CostCalculator;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Variant {
    name: &'static str,
    config: GeneratorConfig,
}

fn base(effort: f64) -> mps_core::GeneratorConfigBuilder {
    GeneratorConfig::builder()
        .outer_iterations((240.0 * effort) as usize)
        .inner_iterations((120.0 * effort) as usize)
        .seed(7)
}

fn main() {
    let effort = effort_from_args();
    let circuit = benchmarks::two_stage_opamp();
    let calc = CostCalculator::new(&circuit);
    // The parallel knobs apply to every variant alike, so an ablation run
    // with `--starts K` still compares equal budgets per row.
    let variants = vec![
        Variant {
            name: "default",
            config: parallel_from_args(base(effort).build()),
        },
        Variant {
            name: "no Eq.6 range optimization",
            config: parallel_from_args(base(effort).optimize_ranges(false).build()),
        },
        Variant {
            name: "no fork on containment",
            config: parallel_from_args(base(effort).fork_on_containment(false).build()),
        },
        Variant {
            name: "coverage target 0.5",
            config: parallel_from_args(base(effort).coverage_target(0.5).build()),
        },
        Variant {
            name: "coverage target 0.8",
            config: parallel_from_args(base(effort).coverage_target(0.8).build()),
        },
    ];

    let mut rows = Vec::new();
    for v in variants {
        let (mps, report) = MpsGenerator::new(&circuit, v.config)
            .generate_with_report()
            .expect("valid circuit");
        // Mean selected cost over a fixed random query stream (fallback
        // included, so coverage losses show up as cost).
        let mut rng = StdRng::seed_from_u64(1234);
        let queries = 300;
        let mut total = 0.0;
        let mut covered = 0usize;
        for _ in 0..queries {
            let dims = random_dims(&circuit, &mut rng);
            if mps.instantiate(&dims).is_some() {
                covered += 1;
            }
            let p = mps.instantiate_or_fallback(&dims);
            total += calc.cost(&p, &dims);
        }
        rows.push(vec![
            v.name.to_owned(),
            report.placements.to_string(),
            format!("{:.1}%", 100.0 * report.coverage),
            format!("{:.1}%", 100.0 * covered as f64 / queries as f64),
            format!("{:.0}", total / queries as f64),
            fmt_duration(report.duration),
        ]);
    }
    println!(
        "Ablation study: two-stage opamp, {} outer iterations",
        (240.0 * effort) as usize
    );
    println!(
        "{}",
        markdown_table(
            &[
                "Variant",
                "Placements",
                "Volume coverage",
                "Query hit rate",
                "Mean query cost",
                "Generation"
            ],
            &rows
        )
    );
}
