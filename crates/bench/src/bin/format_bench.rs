//! Artifact-format benchmark: `mps-v2` binary versus `mps-v1` JSON over
//! a whole structures directory. Converts every `.json` artifact to
//! `.mpsb`, measures total on-disk size and cold-load wall-clock for
//! both formats, differentially verifies that both loads answer
//! identically, and writes `out/BENCH_format.json` — the artifact CI
//! gates on.
//!
//! ```sh
//! cargo run --release -p mps-bench --bin format_bench -- \
//!     [--dir DIR] [--rounds N] [--probes N] \
//!     [--min-size-ratio R] [--min-load-speedup S]
//! ```
//!
//! With the gates set, the run fails (exit 1) unless the binary format
//! is at least `R`× smaller and at least `S`× faster to cold-load than
//! JSON — CI passes 3 and 2 per the format's acceptance bar.

use mps_bench::{markdown_table, write_artifact};
use mps_core::MultiPlacementStructure;
use mps_serve::CompiledQueryIndex;
use serde::{Map, Serialize, Value};
use std::path::PathBuf;
use std::time::Instant;

use mps_bench::cli::arg_value;

/// Probes per structure for the differential answer check.
const DEFAULT_PROBES: usize = 1000;

/// Load rounds per format; the fastest round is reported (standard
/// min-of-N to shed scheduler noise).
const DEFAULT_ROUNDS: usize = 5;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Total wall-clock of the fastest round of loading every file through
/// `load`.
fn best_round_secs(
    paths: &[PathBuf],
    rounds: usize,
    load: impl Fn(&PathBuf) -> MultiPlacementStructure,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        for path in paths {
            std::hint::black_box(load(path));
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn total_bytes(paths: &[PathBuf]) -> u64 {
    paths
        .iter()
        .map(|p| std::fs::metadata(p).expect("artifact metadata").len())
        .sum()
}

fn main() {
    let dir: String = arg_value("dir").unwrap_or_else(|| "out/structures".to_owned());
    let rounds: usize = arg_value("rounds").unwrap_or(DEFAULT_ROUNDS).max(1);
    let probes: usize = arg_value("probes").unwrap_or(DEFAULT_PROBES);
    let min_size_ratio: f64 = arg_value("min-size-ratio").unwrap_or(0.0);
    let min_load_speedup: f64 = arg_value("min-load-speedup").unwrap_or(0.0);

    let mut json_paths: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect(),
        Err(e) => fail(&format!("cannot read structures directory {dir}: {e}")),
    };
    json_paths.sort();
    if json_paths.is_empty() {
        fail(&format!(
            "no .json artifacts in {dir}; generate some first (e.g. table2 --save {dir})"
        ));
    }

    // Convert the whole directory. The binary twins live in a sibling
    // directory so registry-scanning steps over `dir` are unaffected.
    let bin_dir = PathBuf::from(format!("{}_mpsb", dir.trim_end_matches('/')));
    std::fs::create_dir_all(&bin_dir).expect("create binary artifact directory");
    let mut bin_paths = Vec::with_capacity(json_paths.len());
    for path in &json_paths {
        let mps = MultiPlacementStructure::load_json(path)
            .unwrap_or_else(|e| fail(&format!("cannot load {}: {e}", path.display())));
        let bin_path = bin_dir
            .join(path.file_name().expect("artifact file name"))
            .with_extension("mpsb");
        mps.save_bin(&bin_path)
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", bin_path.display())));
        bin_paths.push(bin_path);
    }
    eprintln!(
        "converted {} artifact(s): {dir} -> {}",
        json_paths.len(),
        bin_dir.display()
    );

    // Differential check before anything is timed: each pair of loads
    // must answer bit-identically over a deep probe battery.
    for (json_path, bin_path) in json_paths.iter().zip(&bin_paths) {
        let from_json = MultiPlacementStructure::load_json(json_path).expect("JSON load");
        let from_bin = MultiPlacementStructure::load_bin(bin_path).expect("binary load");
        assert_eq!(
            from_bin.to_json(),
            from_json.to_json(),
            "{}: binary twin must re-serialize identically",
            json_path.display()
        );
        CompiledQueryIndex::build(&from_bin)
            .verify_against(&from_json, probes, 0xF0F0)
            .unwrap_or_else(|e| {
                fail(&format!(
                    "{}: binary load diverges from JSON load: {e}",
                    json_path.display()
                ));
            });
    }
    eprintln!(
        "differential check passed ({probes} probes x {} structure(s))",
        json_paths.len()
    );

    let json_bytes = total_bytes(&json_paths);
    let bin_bytes = total_bytes(&bin_paths);
    let size_ratio = json_bytes as f64 / bin_bytes as f64;

    let json_secs = best_round_secs(&json_paths, rounds, |p| {
        MultiPlacementStructure::load_json(p).expect("JSON load")
    });
    let bin_secs = best_round_secs(&bin_paths, rounds, |p| {
        MultiPlacementStructure::load_bin(p).expect("binary load")
    });
    let load_speedup = json_secs / bin_secs;

    println!(
        "\nArtifact format comparison ({} structures)",
        json_paths.len()
    );
    println!(
        "{}",
        markdown_table(
            &["Format", "Total bytes", "Cold load (best of N)", "vs JSON"],
            &[
                vec![
                    "mps-v1 JSON".to_owned(),
                    json_bytes.to_string(),
                    format!("{:.2}ms", json_secs * 1e3),
                    "1.00x".to_owned(),
                ],
                vec![
                    "mps-v2 binary".to_owned(),
                    bin_bytes.to_string(),
                    format!("{:.2}ms", bin_secs * 1e3),
                    format!("{size_ratio:.2}x smaller, {load_speedup:.2}x faster"),
                ],
            ],
        )
    );

    let mut top = Map::new();
    top.insert("bench", Value::String("format".to_owned()));
    top.insert("structures", json_paths.len().to_value());
    top.insert("rounds", rounds.to_value());
    top.insert("differential_probes_per_structure", probes.to_value());
    top.insert("json_bytes", json_bytes.to_value());
    top.insert("bin_bytes", bin_bytes.to_value());
    top.insert(
        "size_ratio",
        ((size_ratio * 100.0).round() / 100.0).to_value(),
    );
    top.insert("json_cold_load_ms", (json_secs * 1e3).to_value());
    top.insert("bin_cold_load_ms", (bin_secs * 1e3).to_value());
    top.insert(
        "load_speedup",
        ((load_speedup * 100.0).round() / 100.0).to_value(),
    );
    let path = write_artifact(
        "BENCH_format.json",
        &serde_json::to_string_pretty(&Value::Object(top)).expect("value trees serialize"),
    );
    eprintln!("wrote {}", path.display());

    if min_size_ratio > 0.0 && size_ratio < min_size_ratio {
        eprintln!(
            "error: binary artifacts are only {size_ratio:.2}x smaller than JSON, \
             below the required {min_size_ratio}x"
        );
        std::process::exit(1);
    }
    if min_load_speedup > 0.0 && load_speedup < min_load_speedup {
        eprintln!(
            "error: binary cold-load is only {load_speedup:.2}x faster than JSON, \
             below the required {min_load_speedup}x"
        );
        std::process::exit(1);
    }
}
