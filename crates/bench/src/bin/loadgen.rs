//! Closed-loop load generator for `mps-serve`: N client threads drive
//! the **real binary** over TCP with pipelined tagged requests, verify
//! every answer against direct queries on the same artifacts, and write
//! `out/BENCH_loadgen.json` — the serving-performance trajectory record
//! CI extends on every push.
//!
//! ```sh
//! cargo run --release -p mps-bench --bin loadgen -- out/structures \
//!     [--server target/release/mps-serve] [--clients 1,4,16] \
//!     [--requests N] [--pipeline D] [--hot FRAC] [--batch N] \
//!     [--reload-interval-ms M] [--min-qps Q] [--require-cache-speedup S] \
//!     [--scale-clients 64,256,1024] [--min-scaling X] \
//!     [--fanout-batch N] [--require-fanout-speedup X] \
//!     [--max-telemetry-overhead R] [--require-refine-gain] \
//!     [--refine-attempts N]
//! ```
//!
//! Measured scenarios (each against a freshly spawned server on an
//! ephemeral port, so counters are scenario-scoped and parallel CI jobs
//! never collide):
//!
//! * `uniform` at every `--clients` level — per-concurrency scaling on
//!   uniformly random in-bounds queries;
//! * `hotspot` at the highest level — 90% of probes cycle a 16-vector
//!   hot set, half `query` / half `instantiate` (the synthesis-loop
//!   pattern the answer cache targets; instantiate is where a hit saves
//!   microseconds of pool dispatch + coordinate rendering) — and
//!   `hotspot_uncached`, the same stream against a server started with
//!   `--cache-entries 0`: the cached/uncached comparison the
//!   `--require-cache-speedup` gate judges;
//! * `churn` at the highest level — the hotspot stream while a writer
//!   connection hot-reloads the registry every few milliseconds
//!   (adversarial: every reload invalidates the cache all-or-nothing);
//! * `batch_hotspot` — 64-vector batch requests over the hot sets,
//!   exercising the per-element batch cache path (recorded, not gated:
//!   batch lines are JSON-bound on the wire);
//! * `conn_scaling` at every `--scale-clients` level (default
//!   64/256/1024) — the connection-count ceiling probe: far more open
//!   connections than cores, few requests each, the regime where a
//!   thread-per-connection server drowns in context switches and the
//!   shard event loops must not;
//! * `batch_fanout` — `--fanout-batch`-vector batches (default 512,
//!   above the server's parallel-fanout threshold) against the default
//!   server and against `--workers 1`: the speedup is what splitting one
//!   big batch across the whole worker pool buys;
//! * `telemetry_on` / `telemetry_off` — a diverse uniform stream
//!   against two cache-disabled servers (`--cache-entries 0`, so every
//!   request takes the full parse → dispatch → index → render pipeline
//!   and the two sides differ by nothing but recording), one default
//!   and one `--telemetry off`, an unmeasured warmup burst then
//!   best-of-3 each side: what the telemetry layer's recording costs,
//!   which `--max-telemetry-overhead R` caps (fail when the
//!   telemetry-off QPS exceeds `R` times the telemetry-on QPS; skipped
//!   with a warning on single-core machines, where the ratio measures
//!   scheduling);
//! * `refinement_before` / `refinement_after` — traffic-adaptive
//!   refinement end to end in a scenario-private artifact directory: a
//!   deliberately under-annealed structure takes concentrated hot-set
//!   traffic, synchronous `refine` passes run until one is accepted
//!   (the pass re-anneals the hot region, persists the winner
//!   atomically and hot-swaps it), then the *refined* structure serves
//!   the same stream, every answer diffed against the reloaded
//!   artifact. The record — hot-set instantiation cost before/after
//!   (server- and client-side), publish count, divergences — goes to
//!   `out/BENCH_refine.json`; `--require-refine-gain` fails the run
//!   unless ≥ 1 pass was accepted with a strict cost improvement
//!   (skipped with a warning on single-core machines).
//!
//! After every scenario the server's own `metrics` snapshot is fetched
//! and its dispatch-stage p99 cross-checked against the client-observed
//! p99 (both on the same histogram bucket grid): the server's interior
//! view of a request can never be slower than the client's end-to-end
//! view of the same traffic, so a violation means the telemetry layer
//! is lying. The server-side figure rides along in every scenario
//! record as `server_p99_ns`.
//!
//! Every response is matched by its `req` tag and diffed against the
//! reference answer; any divergence or refusal fails the run. `--min-qps`
//! fails the run when the highest-concurrency uniform scenario is slower.
//! `--min-scaling X` fails the run unless uniform QPS at `<cores>`
//! clients is at least `X` times the 1-client figure, and
//! `--require-fanout-speedup X` does the same for the multi-worker vs
//! single-worker fanout comparison; both gates skip with a warning on
//! single-core machines, where there is nothing to scale onto. The
//! scaling curve is additionally written to `out/BENCH_scaling.json`
//! for CI artifact upload.

use mps_bench::cli::arg_value;
use mps_bench::{markdown_table, random_dims, write_artifact};
use mps_core::MultiPlacementStructure;
use mps_geom::Dims;
use mps_netlist::benchmarks;
use mps_serve::LatencyHistogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Map, Serialize, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fail(msg: &str) -> ! {
    eprintln!("loadgen: FAIL: {msg}");
    std::process::exit(1);
}

/// What the reference path says a pool entry must answer.
enum Expect {
    Query(Option<u64>),
    Batch(Vec<Option<u64>>),
    Instantiate {
        id: Option<u64>,
        coords: Vec<(i64, i64)>,
    },
}

/// One reusable request: everything after the `id` tag, plus the
/// reference answer. Clients render `{"id":<k>,<suffix>` at send time so
/// ids stay strictly increasing per connection.
struct PoolEntry {
    suffix: String,
    expect: Expect,
}

fn dims_json(dims: &Dims) -> String {
    let pairs: Vec<String> = dims.iter().map(|&(w, h)| format!("[{w},{h}]")).collect();
    format!("[{}]", pairs.join(","))
}

fn query_entry(name: &str, mps: &MultiPlacementStructure, dims: &Dims) -> PoolEntry {
    PoolEntry {
        suffix: format!(
            r#""kind":"query","structure":"{name}","dims":{}}}"#,
            dims_json(dims)
        ),
        expect: Expect::Query(mps.query(dims).map(|id| u64::from(id.0))),
    }
}

/// Mirrors the server's instantiate dispatch: one compiled/interpretive
/// lookup decides both the id and the placement; uncovered space falls
/// through to the deterministic fallback packing.
fn instantiate_entry(name: &str, mps: &MultiPlacementStructure, dims: &Dims) -> PoolEntry {
    let id = mps.query(dims);
    let placement = match id.and_then(|id| mps.entry(id)) {
        Some(entry) => entry.placement.clone(),
        None => mps.instantiate_or_fallback(dims),
    };
    PoolEntry {
        suffix: format!(
            r#""kind":"instantiate","structure":"{name}","dims":{}}}"#,
            dims_json(dims)
        ),
        expect: Expect::Instantiate {
            id: id.map(|id| u64::from(id.0)),
            coords: placement.coords().iter().map(|p| (p.x, p.y)).collect(),
        },
    }
}

fn batch_entry(name: &str, mps: &MultiPlacementStructure, batch: &[Dims]) -> PoolEntry {
    let vectors: Vec<String> = batch.iter().map(dims_json).collect();
    PoolEntry {
        suffix: format!(
            r#""kind":"batch_query","structure":"{name}","dims_list":[{}]}}"#,
            vectors.join(",")
        ),
        expect: Expect::Batch(
            mps.query_batch(batch)
                .into_iter()
                .map(|id| id.map(|id| u64::from(id.0)))
                .collect(),
        ),
    }
}

/// A spawned `mps-serve --tcp 0` child, killed on drop. The stdin handle
/// is held open so the server keeps serving TCP for the process's life.
struct ServerProc {
    child: Child,
    addr: String,
    _stdin: std::process::ChildStdin,
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(server_bin: &PathBuf, dir: &PathBuf, extra_args: &[&str]) -> ServerProc {
    let mut cmd = Command::new(server_bin);
    cmd.arg(dir).args(["--tcp", "0"]).args(extra_args);
    let mut child = cmd
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap_or_else(|e| fail(&format!("cannot start {}: {e}", server_bin.display())));
    let stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    // The port-0 contract: the bound address is the first stdout line,
    // announced before any serving.
    let mut announce = String::new();
    stdout
        .read_line(&mut announce)
        .unwrap_or_else(|e| fail(&format!("no announce line from the server: {e}")));
    let value: Value = serde_json::parse(announce.trim())
        .unwrap_or_else(|e| fail(&format!("unparsable announce line: {e}: {announce}")));
    if value.get("kind").and_then(Value::as_str) != Some("listening") {
        fail(&format!(
            "first stdout line is not the announce: {announce}"
        ));
    }
    let addr = value
        .get("addr")
        .and_then(Value::as_str)
        .unwrap_or_else(|| fail("announce line carries no addr"))
        .to_owned();
    ServerProc {
        child,
        addr,
        _stdin: stdin,
    }
}

/// One `stats` request over a fresh connection.
fn stats_snapshot(addr: &str) -> Value {
    one_shot(addr, "stats")
}

/// One `metrics` request over a fresh connection: the server's own
/// telemetry snapshot, fetched after a scenario's traffic has drained.
fn metrics_snapshot(addr: &str) -> Value {
    one_shot(addr, "metrics")
}

fn one_shot(addr: &str, kind: &str) -> Value {
    let stream = TcpStream::connect(addr).unwrap_or_else(|e| fail(&format!("{kind} connect: {e}")));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    writeln!(writer, r#"{{"kind":"{kind}"}}"#).unwrap_or_else(|e| fail(&format!("{kind}: {e}")));
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .unwrap_or_else(|e| fail(&format!("{kind} response: {e}")));
    serde_json::parse(line.trim_end())
        .unwrap_or_else(|e| fail(&format!("unparsable {kind}: {e}: {line}")))
}

struct ScenarioOutcome {
    qps: f64,
    p50: Duration,
    p99: Duration,
    p999: Duration,
    requests: u64,
    divergences: u64,
    refusals: u64,
    hit_rate: f64,
    reloads: u64,
    /// The server's own dispatch-stage p99 from its `metrics` response
    /// (0 when telemetry is off or nothing went through `dispatch`).
    server_p99_ns: u64,
    /// The client-observed p99 pushed through the same log-linear
    /// histogram grid the server uses, so the two percentiles round
    /// identically and `server_p99_ns <= client_p99_grid_ns` is exact.
    client_p99_grid_ns: u64,
}

fn percentile(sorted: &[u64], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    Duration::from_nanos(sorted[idx])
}

/// Drives `clients` closed-loop client threads against `addr`, each
/// sending `requests` pipelined tagged requests drawn round-robin from
/// `pool`, and verifies every tagged response against its pool entry.
/// With `reload_every`, a writer connection hot-reloads the registry on
/// that interval for the whole scenario.
fn run_scenario(
    addr: &str,
    clients: usize,
    requests: usize,
    pipeline: usize,
    pool: &Arc<Vec<PoolEntry>>,
    reload_every: Option<Duration>,
) -> ScenarioOutcome {
    let stop = Arc::new(AtomicBool::new(false));
    let reloads = Arc::new(AtomicU64::new(0));
    let reloader = reload_every.map(|interval| {
        let addr = addr.to_owned();
        let stop = Arc::clone(&stop);
        let reloads = Arc::clone(&reloads);
        std::thread::spawn(move || {
            let stream =
                TcpStream::connect(&*addr).unwrap_or_else(|e| fail(&format!("reloader: {e}")));
            let _ = stream.set_nodelay(true);
            let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
            let mut writer = stream;
            while !stop.load(Ordering::Relaxed) {
                writeln!(writer, r#"{{"kind":"reload"}}"#).expect("reload request");
                let mut line = String::new();
                reader.read_line(&mut line).expect("reload response");
                let value: Value = serde_json::parse(line.trim_end())
                    .unwrap_or_else(|e| fail(&format!("unparsable reload response: {e}")));
                if value.get("ok").and_then(Value::as_bool) != Some(true) {
                    fail(&format!("reload refused mid-traffic: {line}"));
                }
                reloads.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(interval);
            }
        })
    });

    let start = Instant::now();
    let mut handles = Vec::new();
    for client in 0..clients {
        let addr = addr.to_owned();
        let pool = Arc::clone(pool);
        handles.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(&*addr)
                .unwrap_or_else(|e| fail(&format!("client {client}: {e}")));
            let _ = stream.set_nodelay(true);
            let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
            let mut writer = stream;
            let mut latencies = Vec::with_capacity(requests);
            let mut divergences = 0u64;
            let mut refusals = 0u64;
            // id → (pool index, send instant); ids are the request
            // sequence numbers, strictly increasing per connection.
            let mut in_flight: Vec<Option<(usize, Instant)>> = vec![None; requests];
            let mut outstanding = 0usize;
            let mut read_one = |in_flight: &mut Vec<Option<(usize, Instant)>>,
                                latencies: &mut Vec<u64>,
                                divergences: &mut u64,
                                refusals: &mut u64| {
                let mut line = String::new();
                reader
                    .read_line(&mut line)
                    .unwrap_or_else(|e| fail(&format!("client {client} read: {e}")));
                let value: Value = serde_json::parse(line.trim_end())
                    .unwrap_or_else(|e| fail(&format!("client {client}: bad JSON: {e}")));
                let req = value
                    .get("req")
                    .and_then(Value::as_u64)
                    .unwrap_or_else(|| fail(&format!("untagged response: {line}")))
                    as usize;
                let (pool_idx, sent_at) = in_flight[req]
                    .take()
                    .unwrap_or_else(|| fail(&format!("response for unknown id {req}")));
                latencies.push(u64::try_from(sent_at.elapsed().as_nanos()).unwrap_or(u64::MAX));
                if value.get("ok").and_then(Value::as_bool) != Some(true) {
                    *refusals += 1;
                    eprintln!("loadgen: client {client} refused: {line}");
                    return;
                }
                let matches =
                    match &pool[pool_idx].expect {
                        Expect::Query(want) => value.get("id").and_then(Value::as_u64) == *want,
                        Expect::Batch(want) => value
                            .get("ids")
                            .and_then(Value::as_array)
                            .is_some_and(|ids| {
                                ids.len() == want.len()
                                    && ids.iter().zip(want).all(|(got, w)| got.as_u64() == *w)
                            }),
                        Expect::Instantiate { id, coords } => {
                            value.get("id").and_then(Value::as_u64) == *id
                                && value.get("coords").and_then(Value::as_array).is_some_and(
                                    |got| {
                                        got.len() == coords.len()
                                            && got.iter().zip(coords).all(|(p, &(x, y))| {
                                                p.as_array().is_some_and(|xy| {
                                                    xy.len() == 2
                                                        && xy[0].as_i64() == Some(x)
                                                        && xy[1].as_i64() == Some(y)
                                                })
                                            })
                                    },
                                )
                        }
                    };
                if !matches {
                    *divergences += 1;
                    eprintln!("loadgen: client {client} answer diverges: {line}");
                }
            };
            for k in 0..requests {
                let pool_idx = (client * 7919 + k) % pool.len();
                let line = format!("{{\"id\":{k},{}", pool[pool_idx].suffix);
                in_flight[k] = Some((pool_idx, Instant::now()));
                writeln!(writer, "{line}")
                    .unwrap_or_else(|e| fail(&format!("client {client} write: {e}")));
                outstanding += 1;
                if outstanding == pipeline.max(1) {
                    read_one(
                        &mut in_flight,
                        &mut latencies,
                        &mut divergences,
                        &mut refusals,
                    );
                    outstanding -= 1;
                }
            }
            while outstanding > 0 {
                read_one(
                    &mut in_flight,
                    &mut latencies,
                    &mut divergences,
                    &mut refusals,
                );
                outstanding -= 1;
            }
            (latencies, divergences, refusals)
        }));
    }
    let mut latencies = Vec::with_capacity(clients * requests);
    let mut divergences = 0u64;
    let mut refusals = 0u64;
    for handle in handles {
        let (lat, div, refused) = handle.join().expect("client thread");
        latencies.extend(lat);
        divergences += div;
        refusals += refused;
    }
    let wall = start.elapsed();
    stop.store(true, Ordering::Relaxed);
    if let Some(handle) = reloader {
        handle.join().expect("reloader thread");
    }
    let stats = stats_snapshot(addr);
    let hit_rate = stats
        .get("cache")
        .and_then(|c| c.get("hit_rate"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let server_p99_ns = metrics_snapshot(addr)
        .get("stages")
        .and_then(|s| s.get("dispatch"))
        .and_then(|d| d.get("p99_ns"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let grid = LatencyHistogram::new();
    for &ns in &latencies {
        grid.record(ns);
    }
    latencies.sort_unstable();
    let total = (clients * requests) as u64;
    ScenarioOutcome {
        qps: total as f64 / wall.as_secs_f64(),
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        p999: percentile(&latencies, 0.999),
        requests: total,
        divergences,
        refusals,
        hit_rate,
        reloads: reloads.load(Ordering::Relaxed),
        server_p99_ns,
        client_p99_grid_ns: grid.snapshot().percentile(0.99),
    }
}

fn outcome_value(mix: &str, clients: usize, o: &ScenarioOutcome) -> Value {
    let mut m = Map::new();
    m.insert("mix", Value::String(mix.to_owned()));
    m.insert("clients", clients.to_value());
    m.insert("requests", o.requests.to_value());
    m.insert("qps", o.qps.round().to_value());
    m.insert(
        "p50_ns",
        u64::try_from(o.p50.as_nanos())
            .unwrap_or(u64::MAX)
            .to_value(),
    );
    m.insert(
        "p99_ns",
        u64::try_from(o.p99.as_nanos())
            .unwrap_or(u64::MAX)
            .to_value(),
    );
    m.insert(
        "p999_ns",
        u64::try_from(o.p999.as_nanos())
            .unwrap_or(u64::MAX)
            .to_value(),
    );
    m.insert("server_p99_ns", o.server_p99_ns.to_value());
    m.insert("cache_hit_rate", o.hit_rate.to_value());
    m.insert("reloads", o.reloads.to_value());
    m.insert("divergences", o.divergences.to_value());
    m.insert("refusals", o.refusals.to_value());
    Value::Object(m)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            eprintln!(
                "usage: loadgen <ARTIFACT_DIR> [--server PATH] [--clients 1,4,16] \
                 [--requests N] [--pipeline D] [--hot FRAC] [--batch N] \
                 [--reload-interval-ms M] [--min-qps Q] [--require-cache-speedup S] \
                 [--scale-clients 64,256,1024] [--min-scaling X] \
                 [--fanout-batch N] [--require-fanout-speedup X] \
                 [--max-telemetry-overhead R] [--require-refine-gain] [--refine-attempts N]"
            );
            std::process::exit(2);
        });
    let server_bin: PathBuf =
        arg_value("server").unwrap_or_else(|| PathBuf::from("target/release/mps-serve"));
    let clients_arg: String = arg_value("clients").unwrap_or_else(|| "1,4,16".to_owned());
    let mut client_levels: Vec<usize> = clients_arg
        .split(',')
        .map(|c| {
            c.trim().parse().unwrap_or_else(|_| {
                eprintln!("error: invalid --clients element {c:?}");
                std::process::exit(2);
            })
        })
        .collect();
    let requests: usize = arg_value("requests").unwrap_or(400);
    let pipeline: usize = arg_value("pipeline").unwrap_or(4);
    let hot_fraction: f64 = arg_value("hot").unwrap_or(0.9);
    let batch_len: usize = arg_value("batch").unwrap_or(64);
    let reload_ms: u64 = arg_value("reload-interval-ms").unwrap_or(10);
    let min_qps: f64 = arg_value("min-qps").unwrap_or(0.0);
    let require_cache_speedup: f64 = arg_value("require-cache-speedup").unwrap_or(0.0);
    let scale_arg: String = arg_value("scale-clients").unwrap_or_else(|| "64,256,1024".to_owned());
    let scale_levels: Vec<usize> = if scale_arg.trim().is_empty() || scale_arg.trim() == "none" {
        Vec::new()
    } else {
        scale_arg
            .split(',')
            .map(|c| {
                c.trim().parse().unwrap_or_else(|_| {
                    eprintln!("error: invalid --scale-clients element {c:?}");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    let min_scaling: f64 = arg_value("min-scaling").unwrap_or(0.0);
    let fanout_batch: usize = arg_value("fanout-batch").unwrap_or(512);
    let require_fanout_speedup: f64 = arg_value("require-fanout-speedup").unwrap_or(0.0);
    let max_telemetry_overhead: f64 = arg_value("max-telemetry-overhead").unwrap_or(0.0);
    let require_refine_gain = std::env::args().any(|a| a == "--require-refine-gain");
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    // The scaling gate compares uniform QPS at `cores` clients to the
    // 1-client figure, so both levels must be measured regardless of
    // what `--clients` asked for.
    if min_scaling > 0.0 {
        client_levels.push(1);
        client_levels.push(cores);
    }
    client_levels.sort_unstable();
    client_levels.dedup();
    let max_clients = *client_levels.last().unwrap_or(&1);

    // --- Reference structures (the answers every response is diffed
    //     against) and the request pools -------------------------------
    let mut structures: Vec<(String, MultiPlacementStructure)> = Vec::new();
    for entry in std::fs::read_dir(&dir)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", dir.display())))
    {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default();
        let name = stem.strip_suffix(".mps").unwrap_or(stem).to_owned();
        let mps = MultiPlacementStructure::load_json(&path)
            .unwrap_or_else(|e| fail(&format!("cannot load {}: {e}", path.display())));
        structures.push((name, mps));
    }
    structures.sort_by(|a, b| a.0.cmp(&b.0));
    if structures.is_empty() {
        fail(&format!("no artifacts in {}", dir.display()));
    }
    eprintln!(
        "loadgen: {} artifact(s): {}",
        structures.len(),
        structures
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let pool_len = 1024usize;
    let mut rng = StdRng::seed_from_u64(0x10AD);
    let uniform_dims = |rng: &mut StdRng, name: &str, mps: &MultiPlacementStructure| -> Dims {
        match benchmarks::by_name(name) {
            Some(bm) => random_dims(&bm.circuit, rng),
            None => mps
                .bounds()
                .iter()
                .map(|b| {
                    (
                        rng.random_range(b.w.lo()..=b.w.hi()),
                        rng.random_range(b.h.lo()..=b.h.hi()),
                    )
                })
                .collect(),
        }
    };
    // Per-structure hot sets, covered vectors preferred (a synthesis
    // loop hammers neighborhoods that exist).
    let hot_sets: Vec<Vec<Dims>> = structures
        .iter()
        .map(|(name, mps)| {
            let mut hot: Vec<Dims> = Vec::new();
            for _ in 0..4096 {
                if hot.len() >= 16 {
                    break;
                }
                let dims = uniform_dims(&mut rng, name, mps);
                if mps.query(&dims).is_some() {
                    hot.push(dims);
                }
            }
            while hot.len() < 16 {
                hot.push(uniform_dims(&mut rng, name, mps));
            }
            hot
        })
        .collect();

    let uniform_pool: Arc<Vec<PoolEntry>> = Arc::new(
        (0..pool_len)
            .map(|k| {
                let (name, mps) = &structures[k % structures.len()];
                let dims = uniform_dims(&mut rng, name, mps);
                query_entry(name, mps, &dims)
            })
            .collect(),
    );
    // The hot-spot mix is half `query`, half `instantiate`: instantiate
    // responses carry the full coordinate vector, which is where the
    // answer cache saves real work (pool dispatch + clone + render).
    let hotspot_pool: Arc<Vec<PoolEntry>> = Arc::new(
        (0..pool_len)
            .map(|k| {
                let s = k % structures.len();
                let (name, mps) = &structures[s];
                let dims = if rng.random_range(0.0..1.0) < hot_fraction {
                    hot_sets[s][rng.random_range(0..hot_sets[s].len())].clone()
                } else {
                    uniform_dims(&mut rng, name, mps)
                };
                if k % 2 == 0 {
                    query_entry(name, mps, &dims)
                } else {
                    instantiate_entry(name, mps, &dims)
                }
            })
            .collect(),
    );
    let batch_pool: Arc<Vec<PoolEntry>> = Arc::new(
        (0..256)
            .map(|k| {
                let s = k % structures.len();
                let (name, mps) = &structures[s];
                let batch: Vec<Dims> = (0..batch_len)
                    .map(|_| {
                        if rng.random_range(0.0..1.0) < hot_fraction {
                            hot_sets[s][rng.random_range(0..hot_sets[s].len())].clone()
                        } else {
                            uniform_dims(&mut rng, name, mps)
                        }
                    })
                    .collect();
                batch_entry(name, mps, &batch)
            })
            .collect(),
    );
    // Fanout-sized batches: big enough to cross the server's parallel
    // split threshold, so one request occupies the whole worker pool
    // instead of a single slot.
    let fanout_pool: Arc<Vec<PoolEntry>> = Arc::new(
        (0..64)
            .map(|k| {
                let s = k % structures.len();
                let (name, mps) = &structures[s];
                let batch: Vec<Dims> = (0..fanout_batch)
                    .map(|_| {
                        if rng.random_range(0.0..1.0) < hot_fraction {
                            hot_sets[s][rng.random_range(0..hot_sets[s].len())].clone()
                        } else {
                            uniform_dims(&mut rng, name, mps)
                        }
                    })
                    .collect();
                batch_entry(name, mps, &batch)
            })
            .collect(),
    );

    // --- Scenarios ----------------------------------------------------
    let mut scenario_rows: Vec<Vec<String>> = Vec::new();
    let mut scenario_values: Vec<Value> = Vec::new();
    let mut scaling = Map::new();
    let mut total_divergences = 0u64;
    let mut total_refusals = 0u64;
    let mut record = |mix: &str, clients: usize, o: &ScenarioOutcome| {
        // Server-vs-client percentile cross-check: the server's interior
        // dispatch p99 must fit inside the client's end-to-end p99 for
        // the same traffic. Both sides round on the same bucket grid, so
        // this holds exactly — a violation means the telemetry is wrong.
        if o.server_p99_ns > 0 && o.server_p99_ns > o.client_p99_grid_ns {
            fail(&format!(
                "{mix} x{clients}: server-side dispatch p99 ({} ns) exceeds the \
                 client-observed p99 ({} ns, same bucket grid) — the server's interior \
                 span cannot be slower than the wire round-trip that contains it",
                o.server_p99_ns, o.client_p99_grid_ns
            ));
        }
        scenario_rows.push(vec![
            mix.to_owned(),
            clients.to_string(),
            format!("{:.0}", o.qps),
            format!("{:?}", o.p50),
            format!("{:?}", o.p99),
            format!("{:?}", o.p999),
            format!("{:?}", Duration::from_nanos(o.server_p99_ns)),
            format!("{:.1}%", 100.0 * o.hit_rate),
            o.reloads.to_string(),
        ]);
        scenario_values.push(outcome_value(mix, clients, o));
    };

    let mut uniform_qps_at_max = 0.0;
    let mut uniform_qps_at_1 = 0.0;
    let mut uniform_qps_at_cores = 0.0;
    for &clients in &client_levels {
        let server = spawn_server(&server_bin, &dir, &[]);
        eprintln!("loadgen: uniform x{clients} against {}", server.addr);
        let o = run_scenario(
            &server.addr,
            clients,
            requests,
            pipeline,
            &uniform_pool,
            None,
        );
        total_divergences += o.divergences;
        total_refusals += o.refusals;
        if clients == max_clients {
            uniform_qps_at_max = o.qps;
        }
        if clients == 1 {
            uniform_qps_at_1 = o.qps;
        }
        if clients == cores {
            uniform_qps_at_cores = o.qps;
        }
        scaling.insert(clients.to_string(), o.qps.round().to_value());
        record("uniform", clients, &o);
    }

    // The connection-ceiling probe: far more open connections than
    // cores, a short burst each. Thread-per-connection serving falls
    // over here (memory + context-switch storm); shard event loops must
    // hold QPS roughly flat across the levels.
    let scale_requests = requests.div_ceil(12).max(20);
    let mut conn_scaling = Map::new();
    for &clients in &scale_levels {
        let server = spawn_server(&server_bin, &dir, &["--max-connections", "0"]);
        eprintln!(
            "loadgen: conn_scaling x{clients} ({scale_requests} reqs each) against {}",
            server.addr
        );
        let o = run_scenario(
            &server.addr,
            clients,
            scale_requests,
            pipeline,
            &uniform_pool,
            None,
        );
        total_divergences += o.divergences;
        total_refusals += o.refusals;
        conn_scaling.insert(clients.to_string(), o.qps.round().to_value());
        record("conn_scaling", clients, &o);
    }

    // The hotspot scenario doubles as the cached side of the
    // cached/uncached comparison: same pool, same concurrency, the only
    // difference is the server's `--cache-entries`.
    let server = spawn_server(&server_bin, &dir, &[]);
    eprintln!("loadgen: hotspot x{max_clients} against {}", server.addr);
    let cached = run_scenario(
        &server.addr,
        max_clients,
        requests,
        pipeline,
        &hotspot_pool,
        None,
    );
    total_divergences += cached.divergences;
    total_refusals += cached.refusals;
    record("hotspot", max_clients, &cached);
    drop(server);

    let server = spawn_server(&server_bin, &dir, &["--cache-entries", "0"]);
    eprintln!("loadgen: hotspot (cache disabled) x{max_clients}");
    let uncached = run_scenario(
        &server.addr,
        max_clients,
        requests,
        pipeline,
        &hotspot_pool,
        None,
    );
    total_divergences += uncached.divergences;
    total_refusals += uncached.refusals;
    record("hotspot_uncached", max_clients, &uncached);
    drop(server);
    let cache_speedup = cached.qps / uncached.qps.max(1e-9);

    let server = spawn_server(&server_bin, &dir, &[]);
    eprintln!(
        "loadgen: churn x{max_clients} (reload every {reload_ms}ms) against {}",
        server.addr
    );
    let o = run_scenario(
        &server.addr,
        max_clients,
        requests,
        pipeline,
        &hotspot_pool,
        Some(Duration::from_millis(reload_ms)),
    );
    if o.reloads == 0 {
        fail("churn scenario finished without a single hot-reload");
    }
    total_divergences += o.divergences;
    total_refusals += o.refusals;
    record("churn", max_clients, &o);
    drop(server);

    // Batched hot-spot traffic: exercises the per-element batch cache
    // path under concurrency (throughput here is JSON-bound — 64
    // vectors per line — so it is recorded, not gated).
    let batch_requests = requests.div_ceil(4).max(50);
    let server = spawn_server(&server_bin, &dir, &[]);
    eprintln!("loadgen: batch_hotspot x{max_clients}");
    let o = run_scenario(
        &server.addr,
        max_clients,
        batch_requests,
        pipeline,
        &batch_pool,
        None,
    );
    total_divergences += o.divergences;
    total_refusals += o.refusals;
    record("batch_hotspot", max_clients, &o);
    drop(server);

    // Fanout comparison: the same stream of over-threshold batches
    // against the default server (batch split across the pool) and
    // against `--workers 1` (the old one-batch-one-slot ceiling). Few
    // clients on purpose — the question is what ONE big batch gains,
    // not how many fit.
    let fanout_clients = 2.min(max_clients.max(1));
    let fanout_requests = requests.div_ceil(16).max(10);
    let server = spawn_server(&server_bin, &dir, &[]);
    eprintln!(
        "loadgen: batch_fanout x{fanout_clients} ({fanout_batch}-vector batches) against {}",
        server.addr
    );
    let fanout_multi = run_scenario(
        &server.addr,
        fanout_clients,
        fanout_requests,
        2,
        &fanout_pool,
        None,
    );
    total_divergences += fanout_multi.divergences;
    total_refusals += fanout_multi.refusals;
    record("batch_fanout", fanout_clients, &fanout_multi);
    drop(server);

    let server = spawn_server(&server_bin, &dir, &["--workers", "1"]);
    eprintln!("loadgen: batch_fanout (1 worker) x{fanout_clients}");
    let fanout_single = run_scenario(
        &server.addr,
        fanout_clients,
        fanout_requests,
        2,
        &fanout_pool,
        None,
    );
    total_divergences += fanout_single.divergences;
    total_refusals += fanout_single.refusals;
    record("batch_fanout_1worker", fanout_clients, &fanout_single);
    drop(server);
    let fanout_speedup = fanout_multi.qps / fanout_single.qps.max(1e-9);

    // Telemetry overhead: the same uniform stream against a default
    // server (telemetry on) and one started with `--telemetry off`,
    // best-of-3 per side — max-of-N is the standard noise filter for a
    // ratio gate this tight (the claim is "under 5%", and OS jitter
    // alone exceeds that in a single short run). Each round warms the
    // fresh server with an unmeasured burst first: the measured window
    // must be steady state, not allocator/page-cache/accept-path
    // startup, or the ratio measures boot noise instead of recording.
    let overhead_requests = requests.max(2000);
    let overhead_clients = max_clients;
    // A pool larger than the total request count: near-zero replay hit
    // rate, so the measured path is the full parse → dispatch → index →
    // render pipeline. Reusing the 1024-entry uniform pool here would
    // turn the run into mostly cached-line replay — the cheapest path
    // the server has, which overstates the *relative* cost of recording
    // on the traffic nobody optimizes for.
    let overhead_pool: Arc<Vec<PoolEntry>> = Arc::new(
        (0..(overhead_clients * overhead_requests).next_power_of_two())
            .map(|k| {
                let (name, mps) = &structures[k % structures.len()];
                let dims = uniform_dims(&mut rng, name, mps);
                query_entry(name, mps, &dims)
            })
            .collect(),
    );
    let mut best_of_3 = |extra_args: &[&str], label: &str| -> ScenarioOutcome {
        let mut best: Option<ScenarioOutcome> = None;
        for round in 1..=3 {
            let server = spawn_server(&server_bin, &dir, extra_args);
            eprintln!(
                "loadgen: {label} x{overhead_clients} round {round}/3 against {}",
                server.addr
            );
            let warmup = run_scenario(
                &server.addr,
                overhead_clients,
                200,
                pipeline,
                &overhead_pool,
                None,
            );
            total_divergences += warmup.divergences;
            total_refusals += warmup.refusals;
            let o = run_scenario(
                &server.addr,
                overhead_clients,
                overhead_requests,
                pipeline,
                &overhead_pool,
                None,
            );
            total_divergences += o.divergences;
            total_refusals += o.refusals;
            if best.as_ref().is_none_or(|b| o.qps > b.qps) {
                best = Some(o);
            }
        }
        best.expect("three rounds ran")
    };
    // Both sides run cache-disabled: with the answer cache on, the
    // measured mix depends on how the client index stride happens to
    // overlap the pool, and the cheapest (replay) path dominates. With
    // it off every request takes the full pipeline on both servers —
    // the paths being compared are identical except for recording.
    let telemetry_on = best_of_3(&["--cache-entries", "0"], "telemetry_on");
    let telemetry_off = best_of_3(
        &["--cache-entries", "0", "--telemetry", "off"],
        "telemetry_off",
    );
    record("telemetry_on", overhead_clients, &telemetry_on);
    record("telemetry_off", overhead_clients, &telemetry_off);
    // > 1 means recording costs throughput; the gate caps the ratio.
    let telemetry_overhead = telemetry_off.qps / telemetry_on.qps.max(1e-9);

    // --- Refinement scenario ------------------------------------------
    // Traffic-adaptive refinement end to end against the real binary: a
    // scenario-private directory gets a deliberately under-annealed
    // structure (the refiner rewrites artifacts on disk, so the shared
    // directory must stay untouched), clients concentrate their traffic
    // on one region of dims-space, refinement passes run until one is
    // accepted, and the refined structure then serves the same stream —
    // zero divergence, zero interruption, improved hot-set cost.
    let refine_attempts_cap: usize = arg_value("refine-attempts").unwrap_or(12);
    let refine_dir = std::env::temp_dir().join(format!("loadgen_refine_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&refine_dir);
    std::fs::create_dir_all(&refine_dir)
        .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", refine_dir.display())));
    let refine_circuit = benchmarks::circ01();
    let weak = mps_core::MpsGenerator::new(
        &refine_circuit,
        mps_core::GeneratorConfig::builder()
            .outer_iterations(10)
            .inner_iterations(10)
            .seed(0x0EF1)
            .build(),
    )
    .generate()
    .unwrap_or_else(|e| {
        fail(&format!(
            "cannot generate the refinement seed structure: {e}"
        ))
    });
    let refine_path = refine_dir.join("circ01.mps.json");
    weak.save_json(&refine_path)
        .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", refine_path.display())));

    // The hot set: every axis pinned to its lowest tenth, so the
    // server's heatmap concentrates in one bin per axis — the signal
    // the refiner keys on.
    let refine_hot: Vec<Dims> = (0..16)
        .map(|k: i64| {
            weak.bounds()
                .iter()
                .map(|b| {
                    let probe = |i: &mps_geom::Interval| {
                        let tenth = (i64::try_from(i.len()).unwrap_or(i64::MAX) / 10).max(1);
                        i.lo() + (k * 5) % tenth
                    };
                    (probe(&b.w), probe(&b.h))
                })
                .collect()
        })
        .collect();
    // The client-side view of the server's acceptance metric: summed
    // instantiated-placement bounding-box area over the hot set.
    let hot_cost = |mps: &MultiPlacementStructure| -> u64 {
        refine_hot
            .iter()
            .map(|dims| {
                let placement = mps.instantiate_or_fallback(dims);
                placement.bounding_box(dims).map_or(0, |bbox| bbox.area())
            })
            .fold(0u64, u64::saturating_add)
    };
    let client_cost_before = hot_cost(&weak);

    // `--refine on` exercises the worker spawn path; the long interval
    // keeps publishes out of the measured phases so every response can
    // be diffed against a known version — the passes themselves are
    // triggered synchronously through the protocol below.
    let server = spawn_server(
        &server_bin,
        &refine_dir,
        &["--refine", "on", "--refine-interval", "3600"],
    );
    eprintln!("loadgen: refinement x2 against {}", server.addr);
    let refine_pool_before: Arc<Vec<PoolEntry>> = Arc::new(
        (0..pool_len)
            .map(|k| query_entry("circ01", &weak, &refine_hot[k % refine_hot.len()]))
            .collect(),
    );
    let before = run_scenario(
        &server.addr,
        2,
        requests,
        pipeline,
        &refine_pool_before,
        None,
    );
    total_divergences += before.divergences;
    total_refusals += before.refusals;
    record("refinement_before", 2, &before);

    let mut refine_attempts = 0u64;
    let mut refine_publishes = 0u64;
    let (mut server_cost_before, mut server_cost_after, mut refine_gain_ppm) = (0u64, 0u64, 0u64);
    {
        let stream = TcpStream::connect(&*server.addr)
            .unwrap_or_else(|e| fail(&format!("refine trigger: {e}")));
        let _ = stream.set_nodelay(true);
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut writer = stream;
        for _ in 0..refine_attempts_cap {
            refine_attempts += 1;
            writeln!(writer, r#"{{"kind":"refine","structure":"circ01"}}"#)
                .unwrap_or_else(|e| fail(&format!("refine trigger: {e}")));
            let mut line = String::new();
            reader
                .read_line(&mut line)
                .unwrap_or_else(|e| fail(&format!("refine response: {e}")));
            let value: Value = serde_json::parse(line.trim_end())
                .unwrap_or_else(|e| fail(&format!("unparsable refine response: {e}: {line}")));
            if value.get("ok").and_then(Value::as_bool) != Some(true) {
                fail(&format!("refine refused: {line}"));
            }
            match value.get("outcome").and_then(Value::as_str) {
                Some("accepted") => {
                    refine_publishes += 1;
                    server_cost_before = value
                        .get("cost_before")
                        .and_then(Value::as_u64)
                        .unwrap_or(0);
                    server_cost_after =
                        value.get("cost_after").and_then(Value::as_u64).unwrap_or(0);
                    refine_gain_ppm = value.get("gain_ppm").and_then(Value::as_u64).unwrap_or(0);
                    break;
                }
                Some("rejected" | "no_candidate") => {}
                other => fail(&format!("unexpected refine outcome {other:?}: {line}")),
            }
        }
    }

    // The accepted pass persisted the winner before publishing it, so
    // the scenario-private artifact now *is* the served structure: the
    // reloaded reference must answer the second measured phase.
    let refined = MultiPlacementStructure::load_json(&refine_path)
        .unwrap_or_else(|e| fail(&format!("cannot reload {}: {e}", refine_path.display())));
    let client_cost_after = hot_cost(&refined);
    let refine_pool_after: Arc<Vec<PoolEntry>> = Arc::new(
        (0..pool_len)
            .map(|k| query_entry("circ01", &refined, &refine_hot[k % refine_hot.len()]))
            .collect(),
    );
    let after = run_scenario(
        &server.addr,
        2,
        requests,
        pipeline,
        &refine_pool_after,
        None,
    );
    total_divergences += after.divergences;
    total_refusals += after.refusals;
    record("refinement_after", 2, &after);
    let refine_stats = stats_snapshot(&server.addr);
    let refinement_counters = refine_stats
        .get("refinement")
        .cloned()
        .unwrap_or(Value::Null);
    drop(server);

    let mut refine_record = Map::new();
    refine_record.insert("bench", Value::String("refinement".to_owned()));
    refine_record.insert("structure", Value::String("circ01".to_owned()));
    refine_record.insert("hot_set", refine_hot.len().to_value());
    refine_record.insert("attempts", refine_attempts.to_value());
    refine_record.insert("publishes", refine_publishes.to_value());
    refine_record.insert("server_cost_before", server_cost_before.to_value());
    refine_record.insert("server_cost_after", server_cost_after.to_value());
    refine_record.insert("gain_ppm", refine_gain_ppm.to_value());
    refine_record.insert("client_cost_before", client_cost_before.to_value());
    refine_record.insert("client_cost_after", client_cost_after.to_value());
    refine_record.insert("qps_before", before.qps.round().to_value());
    refine_record.insert("qps_after", after.qps.round().to_value());
    refine_record.insert(
        "divergences",
        (before.divergences + after.divergences).to_value(),
    );
    refine_record.insert("refusals", (before.refusals + after.refusals).to_value());
    refine_record.insert("require_refine_gain", require_refine_gain.to_value());
    refine_record.insert("cores", cores.to_value());
    refine_record.insert("refinement", refinement_counters);
    let path = write_artifact(
        "BENCH_refine.json",
        &serde_json::to_string_pretty(&Value::Object(refine_record))
            .expect("value trees serialize"),
    );
    eprintln!("wrote {}", path.display());
    let _ = std::fs::remove_dir_all(&refine_dir);

    // --- Report -------------------------------------------------------
    println!(
        "\nServing load ({} structure(s), {requests} reqs/client, pipeline depth {pipeline})",
        structures.len()
    );
    println!(
        "{}",
        markdown_table(
            &[
                "Mix",
                "Clients",
                "QPS",
                "p50",
                "p99",
                "p999",
                "Server p99",
                "Hit rate",
                "Reloads"
            ],
            &scenario_rows
        )
    );
    println!(
        "cached vs uncached hot-spot stream: {:.0} vs {:.0} req/s ({cache_speedup:.2}x)",
        cached.qps, uncached.qps
    );
    println!(
        "{fanout_batch}-vector batch fanout, {cores} core(s): {:.0} vs {:.0} req/s \
         with 1 worker ({fanout_speedup:.2}x)",
        fanout_multi.qps, fanout_single.qps
    );
    println!(
        "telemetry on vs off (best of 3): {:.0} vs {:.0} req/s \
         (off/on {telemetry_overhead:.3}x)",
        telemetry_on.qps, telemetry_off.qps
    );
    println!(
        "refinement: {refine_publishes} publish(es) in {refine_attempts} attempt(s), \
         hot-set cost {server_cost_before} -> {server_cost_after} \
         (gain {refine_gain_ppm} ppm, client-side {client_cost_before} -> {client_cost_after})"
    );
    if uniform_qps_at_1 > 0.0 && uniform_qps_at_cores > 0.0 {
        println!(
            "uniform scaling 1 -> {cores} client(s): {:.0} -> {:.0} req/s ({:.2}x)",
            uniform_qps_at_1,
            uniform_qps_at_cores,
            uniform_qps_at_cores / uniform_qps_at_1
        );
    }

    let mut top = Map::new();
    top.insert("bench", Value::String("loadgen".to_owned()));
    top.insert("artifact_dir", Value::String(dir.display().to_string()));
    top.insert(
        "structures",
        Value::Array(
            structures
                .iter()
                .map(|(n, _)| Value::String(n.clone()))
                .collect(),
        ),
    );
    top.insert("requests_per_client", requests.to_value());
    top.insert("pipeline_depth", pipeline.to_value());
    top.insert("hot_fraction", hot_fraction.to_value());
    top.insert("batch_len", batch_len.to_value());
    top.insert("cores", cores.to_value());
    top.insert("scenarios", Value::Array(scenario_values));
    top.insert("uniform_qps_by_clients", Value::Object(scaling.clone()));
    top.insert(
        "conn_scaling_qps_by_clients",
        Value::Object(conn_scaling.clone()),
    );
    let mut fanout = Map::new();
    fanout.insert("batch_len", fanout_batch.to_value());
    fanout.insert("multi_worker_qps", fanout_multi.qps.round().to_value());
    fanout.insert("single_worker_qps", fanout_single.qps.round().to_value());
    fanout.insert(
        "speedup",
        ((fanout_speedup * 100.0).round() / 100.0).to_value(),
    );
    top.insert("batch_fanout", Value::Object(fanout.clone()));
    let mut comparison = Map::new();
    comparison.insert("cached_qps", cached.qps.round().to_value());
    comparison.insert("uncached_qps", uncached.qps.round().to_value());
    comparison.insert(
        "speedup",
        ((cache_speedup * 100.0).round() / 100.0).to_value(),
    );
    comparison.insert("cached_hit_rate", cached.hit_rate.to_value());
    top.insert("cache_comparison", Value::Object(comparison));
    let mut overhead = Map::new();
    overhead.insert("on_qps", telemetry_on.qps.round().to_value());
    overhead.insert("off_qps", telemetry_off.qps.round().to_value());
    overhead.insert(
        "off_over_on",
        ((telemetry_overhead * 1000.0).round() / 1000.0).to_value(),
    );
    overhead.insert("on_server_p99_ns", telemetry_on.server_p99_ns.to_value());
    top.insert("telemetry_overhead", Value::Object(overhead));
    let mut gates = Map::new();
    gates.insert("min_qps", min_qps.to_value());
    gates.insert("measured_qps", uniform_qps_at_max.round().to_value());
    gates.insert("require_cache_speedup", require_cache_speedup.to_value());
    gates.insert(
        "measured_cache_speedup",
        ((cache_speedup * 100.0).round() / 100.0).to_value(),
    );
    let scaling_ratio = if uniform_qps_at_1 > 0.0 {
        uniform_qps_at_cores / uniform_qps_at_1
    } else {
        0.0
    };
    gates.insert("min_scaling", min_scaling.to_value());
    gates.insert(
        "measured_scaling",
        ((scaling_ratio * 100.0).round() / 100.0).to_value(),
    );
    gates.insert("require_fanout_speedup", require_fanout_speedup.to_value());
    gates.insert(
        "measured_fanout_speedup",
        ((fanout_speedup * 100.0).round() / 100.0).to_value(),
    );
    gates.insert("max_telemetry_overhead", max_telemetry_overhead.to_value());
    gates.insert(
        "measured_telemetry_overhead",
        ((telemetry_overhead * 1000.0).round() / 1000.0).to_value(),
    );
    gates.insert("require_refine_gain", require_refine_gain.to_value());
    gates.insert("measured_refine_publishes", refine_publishes.to_value());
    gates.insert("measured_refine_gain_ppm", refine_gain_ppm.to_value());
    top.insert("gates", Value::Object(gates.clone()));
    let path = write_artifact(
        "BENCH_loadgen.json",
        &serde_json::to_string_pretty(&Value::Object(top)).expect("value trees serialize"),
    );
    eprintln!("wrote {}", path.display());

    // The scaling curve as its own artifact — small, stable-shaped,
    // what CI uploads so a regression is visible as a curve, not a
    // single number.
    let mut curve = Map::new();
    curve.insert("bench", Value::String("scaling".to_owned()));
    curve.insert("cores", cores.to_value());
    curve.insert("requests_per_client", requests.to_value());
    curve.insert("uniform_qps_by_clients", Value::Object(scaling));
    curve.insert("conn_scaling_qps_by_clients", Value::Object(conn_scaling));
    curve.insert("batch_fanout", Value::Object(fanout));
    curve.insert("gates", Value::Object(gates));
    let path = write_artifact(
        "BENCH_scaling.json",
        &serde_json::to_string_pretty(&Value::Object(curve)).expect("value trees serialize"),
    );
    eprintln!("wrote {}", path.display());

    // --- Gates --------------------------------------------------------
    if total_divergences > 0 || total_refusals > 0 {
        fail(&format!(
            "{total_divergences} divergence(s) and {total_refusals} refusal(s) across all \
             scenarios — served answers must be bit-identical to the direct query path"
        ));
    }
    if min_qps > 0.0 && uniform_qps_at_max < min_qps {
        fail(&format!(
            "uniform QPS at {max_clients} clients is {uniform_qps_at_max:.0}, \
             below the required {min_qps:.0}"
        ));
    }
    if require_cache_speedup > 0.0 && cache_speedup < require_cache_speedup {
        fail(&format!(
            "the cached hot-spot stream is only {cache_speedup:.2}x the uncached run, \
             below the required {require_cache_speedup:.2}x"
        ));
    }
    if min_scaling > 0.0 {
        if cores < 2 {
            eprintln!(
                "loadgen: WARN: --min-scaling {min_scaling} skipped — only {cores} core(s), \
                 nothing to scale onto"
            );
        } else if scaling_ratio < min_scaling {
            fail(&format!(
                "uniform QPS at {cores} clients is only {scaling_ratio:.2}x the 1-client \
                 figure, below the required {min_scaling:.2}x"
            ));
        }
    }
    if max_telemetry_overhead > 0.0 {
        if cores < 2 {
            // On one core the server and the closed-loop clients fight
            // for the same CPU, so the off/on ratio measures scheduler
            // perturbation, not recording cost — same self-skip as the
            // other parallelism-dependent gates.
            eprintln!(
                "loadgen: WARN: --max-telemetry-overhead {max_telemetry_overhead} skipped — \
                 only {cores} core(s), the ratio would measure scheduling, not recording"
            );
        } else if telemetry_overhead > max_telemetry_overhead {
            fail(&format!(
                "telemetry recording costs too much: the telemetry-off server is \
                 {telemetry_overhead:.3}x the telemetry-on throughput, above the allowed \
                 {max_telemetry_overhead:.3}x"
            ));
        }
    }
    if require_fanout_speedup > 0.0 {
        if cores < 2 {
            eprintln!(
                "loadgen: WARN: --require-fanout-speedup {require_fanout_speedup} skipped — \
                 only {cores} core(s), the pool cannot fan out"
            );
        } else if fanout_speedup < require_fanout_speedup {
            fail(&format!(
                "{fanout_batch}-vector batches are only {fanout_speedup:.2}x faster with the \
                 full pool than with 1 worker, below the required {require_fanout_speedup:.2}x"
            ));
        }
    }
    if require_refine_gain {
        if cores < 2 {
            // On one core the re-anneal contends with the serving
            // threads whose traffic it is supposed to improve — same
            // self-skip as the other parallelism-dependent gates.
            eprintln!(
                "loadgen: WARN: --require-refine-gain skipped — only {cores} core(s), \
                 the refinement pass would measure scheduler contention"
            );
        } else if refine_publishes == 0 {
            fail(&format!(
                "no refinement pass was accepted in {refine_attempts} attempt(s) against \
                 the deliberately under-annealed scenario structure"
            ));
        } else if server_cost_after >= server_cost_before {
            fail(&format!(
                "the accepted refinement pass did not improve the hot-set instantiation \
                 cost ({server_cost_before} -> {server_cost_after})"
            ));
        }
    }
    println!(
        "loadgen: OK — {} scenario(s), 0 divergences, uniform@{max_clients} {:.0} QPS, \
         cache speedup {cache_speedup:.2}x",
        scenario_rows.len(),
        uniform_qps_at_max
    );
}
