//! End-to-end serve smoke: start the real `mps-serve` binary over a
//! directory of `--save`d artifacts, pipe a query stream through its
//! stdin/stdout, and diff every answer against direct
//! `MultiPlacementStructure::query` calls on the same artifacts. Exits
//! non-zero on the first divergence — this is the CI gate proving the
//! whole serving pipeline (persist → load → compile → protocol) answers
//! exactly like the in-process structure.
//!
//! ```sh
//! cargo run --release -p mps-bench --bin serve_smoke -- out/structures \
//!     [--server target/release/mps-serve] [--queries N]
//! ```

use mps_bench::cli::arg_value;
use mps_bench::random_dims;
use mps_core::MultiPlacementStructure;
use mps_geom::Dims;
use mps_netlist::benchmarks;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn fail(msg: &str) -> ! {
    eprintln!("serve_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            eprintln!("usage: serve_smoke <ARTIFACT_DIR> [--server PATH] [--queries N]");
            std::process::exit(2);
        });
    let server_bin: PathBuf =
        arg_value("server").unwrap_or_else(|| PathBuf::from("target/release/mps-serve"));
    let queries: usize = arg_value("queries").unwrap_or(300);

    // Load every artifact directly — the reference answers.
    let mut structures: Vec<(String, MultiPlacementStructure)> = Vec::new();
    for entry in std::fs::read_dir(&dir)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", dir.display())))
    {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default();
        let name = stem.strip_suffix(".mps").unwrap_or(stem).to_owned();
        let mps = MultiPlacementStructure::load_json(&path)
            .unwrap_or_else(|e| fail(&format!("cannot load {}: {e}", path.display())));
        structures.push((name, mps));
    }
    structures.sort_by(|a, b| a.0.cmp(&b.0));
    if structures.is_empty() {
        fail(&format!("no artifacts in {}", dir.display()));
    }
    eprintln!(
        "serve_smoke: {} artifact(s): {}",
        structures.len(),
        structures
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // The query streams, one per structure, from the circuit's bounds
    // when the benchmark is known (else from the structure's own bounds).
    let mut streams: Vec<Vec<Dims>> = Vec::new();
    for (name, mps) in &structures {
        let mut rng = StdRng::seed_from_u64(0x500C ^ name.len() as u64);
        let stream: Vec<Dims> = match benchmarks::by_name(name) {
            Some(bm) => (0..queries)
                .map(|_| random_dims(&bm.circuit, &mut rng))
                .collect(),
            None => {
                let bounds = mps.bounds().to_vec();
                use rand::Rng;
                (0..queries)
                    .map(|_| {
                        bounds
                            .iter()
                            .map(|b| {
                                (
                                    rng.random_range(b.w.lo()..=b.w.hi()),
                                    rng.random_range(b.h.lo()..=b.h.hi()),
                                )
                            })
                            .collect()
                    })
                    .collect()
            }
        };
        streams.push(stream);
    }

    // Start the server and pipe the whole stream through it.
    let mut child = Command::new(&server_bin)
        .arg(&dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| fail(&format!("cannot start {}: {e}", server_bin.display())));
    let mut stdin = child.stdin.take().expect("piped stdin");
    let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));

    let request_streams = streams.clone();
    let request_names: Vec<String> = structures.iter().map(|(n, _)| n.clone()).collect();
    let writer = std::thread::spawn(move || {
        writeln!(stdin, "{{\"kind\":\"list_structures\"}}").expect("server accepts requests");
        for (name, stream) in request_names.iter().zip(&request_streams) {
            for dims in stream {
                let pairs: Vec<String> = dims.iter().map(|&(w, h)| format!("[{w},{h}]")).collect();
                writeln!(
                    stdin,
                    "{{\"kind\":\"query\",\"structure\":\"{name}\",\"dims\":[{}]}}",
                    pairs.join(",")
                )
                .expect("server accepts requests");
            }
            // The same stream again as one batch request.
            let vectors: Vec<String> = stream
                .iter()
                .map(|dims| {
                    let pairs: Vec<String> =
                        dims.iter().map(|&(w, h)| format!("[{w},{h}]")).collect();
                    format!("[{}]", pairs.join(","))
                })
                .collect();
            writeln!(
                stdin,
                "{{\"kind\":\"batch_query\",\"structure\":\"{name}\",\"dims_list\":[{}]}}",
                vectors.join(",")
            )
            .expect("server accepts requests");
        }
        writeln!(stdin, "{{\"kind\":\"stats\"}}").expect("server accepts requests");
        // dropping stdin ends the session
    });

    let mut lines = stdout.lines().map(|l| l.expect("server stays alive"));
    let mut next = |context: &str| -> Value {
        let line = lines
            .next()
            .unwrap_or_else(|| fail(&format!("server closed before answering {context}")));
        let value = serde_json::parse(&line)
            .unwrap_or_else(|e| fail(&format!("unparsable response for {context}: {e}: {line}")));
        if value.get("ok").and_then(Value::as_bool) != Some(true) {
            fail(&format!("refusal for {context}: {line}"));
        }
        value
    };

    // list_structures must name every artifact.
    let listed = next("list_structures");
    let listed: Vec<&str> = listed
        .get("names")
        .and_then(Value::as_array)
        .map(|names| names.iter().filter_map(Value::as_str).collect())
        .unwrap_or_default();
    for (name, _) in &structures {
        if !listed.contains(&name.as_str()) {
            fail(&format!(
                "structure `{name}` missing from list_structures: {listed:?}"
            ));
        }
    }

    // Diff the full stream: every wire answer equals the direct query.
    let mut diffed = 0usize;
    let mut covered = 0usize;
    for ((name, mps), stream) in structures.iter().zip(&streams) {
        for (k, dims) in stream.iter().enumerate() {
            let response = next(&format!("query {k} on {name}"));
            let got = response.get("id").and_then(Value::as_u64);
            let expected = mps.query(dims).map(|id| u64::from(id.0));
            if got != expected {
                fail(&format!(
                    "{name} probe {k} ({dims:?}): server answered {got:?}, direct query {expected:?}"
                ));
            }
            diffed += 1;
            covered += usize::from(expected.is_some());
        }
        let batch = next(&format!("batch_query on {name}"));
        let ids = batch
            .get("ids")
            .and_then(Value::as_array)
            .unwrap_or_else(|| fail(&format!("batch response without ids on {name}")));
        let expected = mps.query_batch(stream);
        if ids.len() != expected.len() {
            fail(&format!(
                "{name} batch arity: {} answers for {} vectors",
                ids.len(),
                expected.len()
            ));
        }
        for (k, (got, want)) in ids.iter().zip(&expected).enumerate() {
            if got.as_u64() != want.map(|id| u64::from(id.0)) {
                fail(&format!("{name} batch element {k} diverges"));
            }
            diffed += 1;
        }
    }
    let stats = next("stats");
    let served_queries = stats
        .get("counters")
        .and_then(|c| c.get("queries"))
        .and_then(Value::as_u64)
        .unwrap_or(0);

    writer.join().expect("writer thread");
    let status = child.wait().expect("server exit status");
    if !status.success() {
        fail(&format!("server exited with {status}"));
    }
    if served_queries != diffed as u64 {
        fail(&format!(
            "stats counted {served_queries} queries, the smoke diffed {diffed}"
        ));
    }
    println!(
        "serve_smoke: OK — {} structure(s), {diffed} answers diffed against direct query \
         ({covered} in covered space), 0 mismatches",
        structures.len()
    );
}
