//! Ablation A2 (implied by §1 and Fig. 2): placement quality and speed of
//! the multi-placement structure versus the two classes it aims to
//! combine — the fixed template (fast, inflexible) and the per-query flat
//! SA placer (high quality, slow).
//!
//! For each benchmark, a stream of random sizing queries is answered by
//! all three methods; mean cost and mean per-query time are reported. The
//! shape to verify: MPS time ≈ template time ≪ SA time, and MPS cost
//! between SA cost and template cost (closer to SA).

use mps_bench::cli::{obtain_structure, BenchArgs};
use mps_bench::{fmt_duration, markdown_table, random_dims};
use mps_netlist::benchmarks;
use mps_placer::{CostCalculator, SaPlacer, SaPlacerConfig, Template};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn main() {
    let args = BenchArgs::parse();
    let effort = args.effort;
    let queries = 8;
    let mut rows = Vec::new();
    for bm in benchmarks::all() {
        let circuit = &bm.circuit;
        let calc = CostCalculator::new(circuit);
        let (mps, _) = obtain_structure(
            bm.name,
            circuit,
            args.config_for(circuit, 11),
            &args.persist,
        );
        let template = Template::expert_default(circuit, 6);
        let sa = SaPlacer::new(
            circuit,
            SaPlacerConfig {
                iterations: (4_000.0 * effort) as usize,
                ..Default::default()
            },
        );

        let mut rng = StdRng::seed_from_u64(42);
        let mut cost = [0.0f64; 4]; // mps, mps+repack, template, sa
        let mut time = [Duration::ZERO; 4];
        for q in 0..queries {
            let dims = random_dims(circuit, &mut rng);

            let t = Instant::now();
            let p_mps = mps.instantiate_or_fallback(&dims);
            time[0] += t.elapsed();
            cost[0] += calc.cost(&p_mps, &dims);

            let t = Instant::now();
            let p_rp = mps.instantiate_compacted_or_fallback(&dims);
            time[3] += t.elapsed();
            cost[3] += calc.cost(&p_rp, &dims);

            let t = Instant::now();
            let p_t = template.instantiate(&dims);
            time[1] += t.elapsed();
            cost[1] += calc.cost(&p_t, &dims);

            let t = Instant::now();
            let p_sa = sa.place(&dims, q as u64).placement;
            time[2] += t.elapsed();
            cost[2] += calc.cost(&p_sa, &dims);
        }
        let qf = queries as f64;
        eprintln!(
            "{:<18} mps {:>9.0} / {:<9} repack {:>9.0} / {:<9} template {:>9.0} / {:<9} sa {:>9.0} / {}",
            bm.name,
            cost[0] / qf,
            fmt_duration(time[0] / queries),
            cost[3] / qf,
            fmt_duration(time[3] / queries),
            cost[1] / qf,
            fmt_duration(time[1] / queries),
            cost[2] / qf,
            fmt_duration(time[2] / queries),
        );
        rows.push(vec![
            bm.name.to_owned(),
            format!("{:.0}", cost[0] / qf),
            fmt_duration(time[0] / queries),
            format!("{:.0}", cost[3] / qf),
            fmt_duration(time[3] / queries),
            format!("{:.0}", cost[1] / qf),
            fmt_duration(time[1] / queries),
            format!("{:.0}", cost[2] / qf),
            fmt_duration(time[2] / queries),
        ]);
    }
    println!("\nQuality/speed comparison over {queries} random sizing queries per circuit");
    println!(
        "{}",
        markdown_table(
            &[
                "Circuit",
                "MPS cost",
                "MPS time",
                "MPS+repack cost",
                "MPS+repack time",
                "Template cost",
                "Template time",
                "Flat-SA cost",
                "Flat-SA time"
            ],
            &rows
        )
    );
}
