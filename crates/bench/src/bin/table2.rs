//! Regenerates Table 2: generation time, stored placements, instantiation
//! time per benchmark circuit.
//!
//! Run with `--effort <f>` to scale the generation budget (default 1.0).
//! Absolute times differ from the paper's 2005 SUN-Blade numbers; the
//! shape to verify is (a) generation cost grows with block count into the
//! "coffee-break" range at full effort, (b) instantiation stays at
//! micro/milliseconds regardless of circuit size, and (c) placement counts
//! land in the same tens-to-hundreds band.

use mps_bench::{
    effort_from_args, fmt_duration, markdown_table, parallel_from_args, scaled_config,
    table2_row_with,
};
use mps_netlist::benchmarks;

fn main() {
    let effort = effort_from_args();
    let queries = 1_000;
    eprintln!("generating multi-placement structures (effort {effort}) ...");
    let mut rows = Vec::new();
    for bm in benchmarks::all() {
        let config = parallel_from_args(scaled_config(&bm.circuit, effort, 2005));
        let row = table2_row_with(&bm, config, queries, 2005);
        let ex = &row.report.explorer;
        eprintln!(
            "  {:<18} {:>9}  {:>4} placements  coverage {:>5.1}%  inst {}  \
             [proposals {} rejected {} stored {} shrunk {} forked {} annihilated {}]",
            row.name,
            fmt_duration(row.generation),
            row.placements,
            100.0 * row.coverage,
            fmt_duration(row.mean_instantiation),
            ex.proposals,
            ex.rejected_illegal,
            ex.boxes_stored,
            ex.stored_shrunk,
            ex.stored_forked,
            ex.stored_annihilated,
        );
        rows.push(vec![
            row.name.clone(),
            fmt_duration(row.generation),
            row.placements.to_string(),
            format!("{:.1}%", 100.0 * row.coverage),
            fmt_duration(row.mean_instantiation),
        ]);
    }
    println!("\nTable 2: Usage and Generation of the Multi-Placement Structures");
    println!(
        "{}",
        markdown_table(
            &[
                "Circuit",
                "CPU Generation Time",
                "Placements",
                "Coverage",
                "Instantiation"
            ],
            &rows
        )
    );
}
