//! Regenerates Table 2: generation time, stored placements, instantiation
//! time per benchmark circuit.
//!
//! Run with `--effort <f>` to scale the generation budget (default 1.0).
//! Absolute times differ from the paper's 2005 SUN-Blade numbers; the
//! shape to verify is (a) generation cost grows with block count into the
//! "coffee-break" range at full effort, (b) instantiation stays at
//! micro/milliseconds regardless of circuit size, and (c) placement counts
//! land in the same tens-to-hundreds band.

use mps_bench::cli::{obtain_structure, BenchArgs, StructureSource};
use mps_bench::{fmt_duration, markdown_table, measure_instantiation};
use mps_netlist::benchmarks;

fn main() {
    let args = BenchArgs::parse();
    let queries = 1_000;
    eprintln!(
        "generating multi-placement structures (effort {}) ...",
        args.effort
    );
    let mut rows = Vec::new();
    for bm in benchmarks::all() {
        let config = args.config_for(&bm.circuit, 2005);
        let (mps, source) = obtain_structure(bm.name, &bm.circuit, config, &args.persist);
        let mean_instantiation = measure_instantiation(&bm.circuit, &mps, queries, 2005 ^ 0xABCD);
        let generation = match &source {
            StructureSource::Generated(report) => {
                let ex = &report.explorer;
                eprintln!(
                    "  {:<18} {:>9}  {:>4} placements  coverage {:>5.1}%  inst {}  \
                     [proposals {} rejected {} stored {} shrunk {} forked {} annihilated {}]",
                    bm.name,
                    fmt_duration(report.duration),
                    report.placements,
                    100.0 * report.coverage,
                    fmt_duration(mean_instantiation),
                    ex.proposals,
                    ex.rejected_illegal,
                    ex.boxes_stored,
                    ex.stored_shrunk,
                    ex.stored_forked,
                    ex.stored_annihilated,
                );
                fmt_duration(report.duration)
            }
            StructureSource::Loaded(path) => {
                eprintln!(
                    "  {:<18} loaded     {:>4} placements  coverage {:>5.1}%  inst {}  [{}]",
                    bm.name,
                    mps.placement_count(),
                    100.0 * mps.coverage(),
                    fmt_duration(mean_instantiation),
                    path.display(),
                );
                "loaded".to_owned()
            }
        };
        rows.push(vec![
            bm.name.to_owned(),
            generation,
            mps.placement_count().to_string(),
            format!("{:.1}%", 100.0 * mps.coverage()),
            fmt_duration(mean_instantiation),
        ]);
    }
    println!("\nTable 2: Usage and Generation of the Multi-Placement Structures");
    println!(
        "{}",
        markdown_table(
            &[
                "Circuit",
                "CPU Generation Time",
                "Placements",
                "Coverage",
                "Instantiation"
            ],
            &rows
        )
    );
}
