//! Regenerates Fig. 6: cost of individual stored placements along a 1-D
//! sweep of the size space (top plot) versus the cost of the placement the
//! multi-placement structure selects (bottom plot) for the two-stage
//! opamp. Prints both series and writes `out/fig6.csv`.

use mps_bench::cli::{obtain_structure, BenchArgs};
use mps_bench::{fig6_sweep, write_artifact};
use mps_netlist::benchmarks;
use std::fmt::Write as _;

fn main() {
    let circuit = benchmarks::two_stage_opamp();
    let args = BenchArgs::parse();
    let config = args.config_for(&circuit, 66);
    let (mps, _) = obtain_structure("fig6_two_stage_opamp", &circuit, config, &args.persist);
    let data = fig6_sweep(&circuit, &mps, 60);

    // CSV: sweep value, selected cost, then one column per placement.
    let mut csv = String::from("w0,selected");
    for (id, _) in &data.per_placement {
        let _ = write!(csv, ",p{id}");
    }
    csv.push('\n');
    for (k, &w) in data.sweep.iter().enumerate() {
        let _ = write!(csv, "{w}");
        match data.selected[k] {
            Some(c) => {
                let _ = write!(csv, ",{c:.1}");
            }
            None => csv.push(','),
        }
        for (_, series) in &data.per_placement {
            match series[k] {
                Some(c) => {
                    let _ = write!(csv, ",{c:.1}");
                }
                None => csv.push(','),
            }
        }
        csv.push('\n');
    }
    let path = write_artifact("fig6.csv", &csv);

    // Console summary: verify the lowest-cost-selection property.
    let mut selected_points = 0usize;
    let mut envelope_hits = 0usize;
    for k in 0..data.sweep.len() {
        let Some(sel) = data.selected[k] else {
            continue;
        };
        selected_points += 1;
        let min_forced = data
            .per_placement
            .iter()
            .filter_map(|(_, s)| s[k])
            .fold(f64::INFINITY, f64::min);
        // The structure picks the placement owning this region; Fig. 6's
        // claim is that this tracks the lowest-cost choice.
        if sel <= min_forced * 1.10 {
            envelope_hits += 1;
        }
    }
    println!(
        "Fig 6: {} sweep points, {} covered, selected-cost within 10% of the \
         per-point minimum at {}/{} covered points",
        data.sweep.len(),
        selected_points,
        envelope_hits,
        selected_points
    );
    println!("series written to {}", path.display());
}
