//! Wall-clock speedup of parallel multi-start generation: the same
//! 4-start workload on 1 thread versus N threads, per circuit. The
//! structures are verified bit-identical before the timings are reported
//! — the speedup is free of any result change by construction.
//!
//! ```sh
//! cargo run --release -p mps-bench --bin parallel_speedup
//! cargo run --release -p mps-bench --bin parallel_speedup -- \
//!     --circuit tso-cascode --starts 8 --threads 4 --effort 0.5
//! ```

use mps_bench::cli::{arg_value, effort_from_args};
use mps_bench::{fmt_duration, markdown_table, scaled_config};
use mps_core::{GeneratorConfig, MpsGenerator, MultiPlacementStructure};
use mps_netlist::benchmarks;
use std::time::{Duration, Instant};

/// Panics unless the two structures hold bit-identical entries — the
/// determinism contract the speedup numbers rest on. Counts and coverage
/// alone could mask an entry-level divergence.
fn assert_identical(a: &MultiPlacementStructure, b: &MultiPlacementStructure) {
    assert_eq!(
        a.placement_count(),
        b.placement_count(),
        "thread count changed the placement count — determinism contract broken"
    );
    assert_eq!(
        a.coverage().to_bits(),
        b.coverage().to_bits(),
        "thread count changed coverage — determinism contract broken"
    );
    for ((ia, ea), (ib, eb)) in a.iter().zip(b.iter()) {
        assert!(
            ia == ib
                && ea.dims_box == eb.dims_box
                && ea.placement == eb.placement
                && ea.avg_cost.to_bits() == eb.avg_cost.to_bits()
                && ea.best_cost.to_bits() == eb.best_cost.to_bits()
                && ea.best_dims == eb.best_dims,
            "entry {ia:?} diverged across thread counts — determinism contract broken"
        );
    }
}

fn timed(
    circuit: &mps_netlist::Circuit,
    config: GeneratorConfig,
) -> (MultiPlacementStructure, Duration) {
    let start = Instant::now();
    let mps = MpsGenerator::new(circuit, config)
        .generate()
        .expect("benchmark circuits are valid");
    (mps, start.elapsed())
}

fn main() {
    let circuit_name: String = arg_value("circuit").unwrap_or_else(|| "circ01".to_owned());
    let starts: usize = arg_value("starts").unwrap_or(4).max(1);
    let threads: usize = arg_value("threads").unwrap_or(starts);
    let effort = effort_from_args();

    let bm = benchmarks::by_name(&circuit_name)
        .unwrap_or_else(|| panic!("unknown benchmark circuit {circuit_name:?}"));
    let base = scaled_config(&bm.circuit, effort, 2026);

    eprintln!(
        "{}: {} starts, {} outer x {} inner iterations per start",
        bm.name, starts, base.explorer.outer_iterations, base.bdio.iterations
    );

    let serial = GeneratorConfig {
        num_starts: starts,
        threads: 1,
        ..base.clone()
    };
    let parallel = GeneratorConfig {
        num_starts: starts,
        threads,
        ..base
    };

    let (mps_serial, t_serial) = timed(&bm.circuit, serial);
    let (mps_parallel, t_parallel) = timed(&bm.circuit, parallel);

    assert_identical(&mps_serial, &mps_parallel);
    mps_parallel
        .check_invariants()
        .expect("merged structure invariants");

    let speedup = t_serial.as_secs_f64() / t_parallel.as_secs_f64().max(1e-12);
    let rows = vec![
        vec![
            format!("{starts} starts / 1 thread"),
            fmt_duration(t_serial),
            mps_serial.placement_count().to_string(),
            format!("{:.1}%", 100.0 * mps_serial.coverage()),
            "1.00x".to_owned(),
        ],
        vec![
            format!("{starts} starts / {threads} threads"),
            fmt_duration(t_parallel),
            mps_parallel.placement_count().to_string(),
            format!("{:.1}%", 100.0 * mps_parallel.coverage()),
            format!("{speedup:.2}x"),
        ],
    ];
    println!("Parallel multi-start generation, {}:", bm.name);
    println!(
        "{}",
        markdown_table(
            &[
                "Configuration",
                "Generation",
                "Placements",
                "Coverage",
                "Speedup"
            ],
            &rows
        )
    );
}
