//! One CLI vocabulary for every bench binary.
//!
//! `table2`, `quality`, `fig5`, `fig6`, `fig7`, `ablation`,
//! `parallel_speedup`, `serve_bench` and `serve_smoke` all accept the
//! same measurement knobs; this module is the single implementation of
//! that flag surface:
//!
//! * `--effort F` — scales every generation budget (default 1.0);
//! * `--starts K` / `--threads T` — multi-start parallel generation;
//! * `--save DIR` / `--load DIR` — the generate-once / use-everywhere
//!   persistence workflow, routed through the
//!   [`analog_mps::api::Workspace`] facade.
//!
//! Parse once with [`BenchArgs::parse`]; derive per-circuit configs with
//! [`BenchArgs::config_for`]; resolve structures with
//! [`obtain_structure`].

use crate::scaled_config;
use mps_core::{GeneratorConfig, MultiPlacementStructure};
use mps_netlist::Circuit;
use std::path::{Path, PathBuf};

/// The value following `--<name>` on the CLI (`--name value` or
/// `--name=value`), parsed, if the flag is present. Shared by every
/// binary's lightweight flag handling.
///
/// # Panics
///
/// Exits with an error if the flag is present but its value is missing
/// or unparsable — a measurement run must never silently fall back to a
/// default the user believes they overrode.
#[must_use]
pub fn arg_value<T: std::str::FromStr>(name: &str) -> Option<T> {
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    let args: Vec<String> = std::env::args().collect();
    let raw = args.iter().enumerate().find_map(|(i, a)| {
        if *a == flag {
            Some(args.get(i + 1).cloned())
        } else {
            a.strip_prefix(&prefix).map(|v| Some(v.to_owned()))
        }
    })?;
    let Some(raw) = raw else {
        eprintln!("error: {flag} requires a value");
        std::process::exit(2);
    };
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("error: invalid value {raw:?} for {flag}");
            std::process::exit(2);
        }
    }
}

/// Parses the optional CLI effort argument (`--effort 0.5`, default 1.0).
#[must_use]
pub fn effort_from_args() -> f64 {
    arg_value("effort").unwrap_or(1.0)
}

/// Applies the optional CLI parallel-generation knobs to a config:
/// `--starts K` (default: keep the config's start count) and
/// `--threads T` (`0` = one per core; default: keep the config's count).
/// Every binary that generates a structure accepts them, so any paper
/// artefact can be regenerated with multi-start diversity and all cores.
#[must_use]
pub fn parallel_from_args(mut config: GeneratorConfig) -> GeneratorConfig {
    if let Some(starts) = arg_value::<usize>("starts") {
        config.num_starts = starts.max(1);
    }
    if let Some(threads) = arg_value::<usize>("threads") {
        config.threads = threads;
    }
    config
}

/// The `--save DIR` / `--load DIR` persistence knobs shared by every
/// structure-generating binary: `--load` skips regeneration and reads the
/// structure from `DIR/<circuit>.mps.json`; `--save` writes each generated
/// structure there for later `--load` runs (the paper's generate-once /
/// use-everywhere workflow across processes).
#[derive(Debug, Clone, Default)]
pub struct PersistArgs {
    /// Directory to load pre-generated structures from.
    pub load: Option<PathBuf>,
    /// Directory to save generated structures into.
    pub save: Option<PathBuf>,
}

/// Parses the optional `--load DIR` and `--save DIR` CLI flags.
#[must_use]
pub fn persist_from_args() -> PersistArgs {
    PersistArgs {
        load: arg_value::<PathBuf>("load"),
        save: arg_value::<PathBuf>("save"),
    }
}

/// The common measurement knobs, parsed once per binary.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Budget multiplier (`--effort`, default 1.0).
    pub effort: f64,
    /// The `--save`/`--load` directories.
    pub persist: PersistArgs,
}

impl BenchArgs {
    /// Parses `--effort`, `--save`, `--load` (the `--starts`/`--threads`
    /// knobs are applied per config by [`BenchArgs::config_for`]).
    #[must_use]
    pub fn parse() -> Self {
        Self {
            effort: effort_from_args(),
            persist: persist_from_args(),
        }
    }

    /// The size-scaled generation budget for `circuit` at this run's
    /// effort, with the `--starts`/`--threads` knobs applied.
    #[must_use]
    pub fn config_for(&self, circuit: &Circuit, seed: u64) -> GeneratorConfig {
        parallel_from_args(scaled_config(circuit, self.effort, seed))
    }
}

/// Where [`obtain_structure`] stores / finds the structure for a circuit
/// (the same `<name>.mps.json` layout the `Workspace` facade and the
/// `mps-serve` registry use).
#[must_use]
pub fn structure_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.mps.json"))
}

/// How [`obtain_structure`] came by its structure.
#[derive(Debug)]
pub enum StructureSource {
    /// Freshly generated; the report carries timing and explorer counters.
    Generated(mps_core::GenerationReport),
    /// Loaded (and invariant-revalidated) from this file; no generation
    /// happened.
    Loaded(PathBuf),
}

/// Generates the structure for `name`/`circuit` under `config`, honoring
/// the [`PersistArgs`] knobs through the [`analog_mps::api::Workspace`]
/// facade: with `--load` the structure is read from disk (validated
/// against the `mps-v1` envelope, the Eq.-5 invariants, the compiled
/// query index, *and* the circuit's dimension bounds); with `--save` the
/// generated structure is persisted for future `--load` runs.
///
/// # Panics
///
/// Exits with an error message when a `--load` file is missing, malformed
/// or belongs to a different circuit, and panics on invalid benchmark
/// circuits or unwritable `--save` directories — measurement runs have no
/// useful recovery.
#[cfg(feature = "serde")]
#[must_use]
pub fn obtain_structure(
    name: &str,
    circuit: &Circuit,
    config: GeneratorConfig,
    args: &PersistArgs,
) -> (MultiPlacementStructure, StructureSource) {
    use analog_mps::api::Workspace;

    let open = |dir: &Path| {
        Workspace::open(dir).unwrap_or_else(|e| {
            eprintln!("error: cannot open workspace {}: {e}", dir.display());
            std::process::exit(2);
        })
    };
    if let Some(dir) = &args.load {
        // --load demands a pre-generated artifact: regenerating silently
        // would invalidate the measurement.
        let mut ws = open(dir);
        let handle = ws.load(name).unwrap_or_else(|e| {
            eprintln!("error: cannot load structure `{name}`: {e}");
            std::process::exit(2);
        });
        if handle.structure().bounds() != circuit.dim_bounds() {
            eprintln!(
                "error: structure {} was generated for a different circuit \
                 than `{name}` (dimension bounds differ)",
                structure_path(dir, name).display()
            );
            std::process::exit(2);
        }
        let path = structure_path(dir, name);
        return (handle.structure().clone(), StructureSource::Loaded(path));
    }
    if let Some(dir) = &args.save {
        let mut ws = open(dir);
        let path = ws.artifact_path(name);
        let (handle, report) = ws.generate(name, circuit, config).unwrap_or_else(|e| {
            eprintln!("error: cannot generate/save structure `{name}`: {e}");
            std::process::exit(2);
        });
        eprintln!("  saved {}", path.display());
        return (
            handle.structure().clone(),
            StructureSource::Generated(report),
        );
    }
    let (mps, report) = mps_core::MpsGenerator::new(circuit, config)
        .generate_with_report()
        .expect("benchmark circuits are valid");
    (mps, StructureSource::Generated(report))
}

/// Without the `serde` feature there is no persistence layer; the flags
/// are rejected instead of silently ignored.
#[cfg(not(feature = "serde"))]
#[must_use]
pub fn obtain_structure(
    name: &str,
    circuit: &Circuit,
    config: GeneratorConfig,
    args: &PersistArgs,
) -> (MultiPlacementStructure, StructureSource) {
    if args.load.is_some() || args.save.is_some() {
        eprintln!(
            "error: --load/--save require mps-bench to be built with the \
             `serde` feature (on by default)"
        );
        std::process::exit(2);
    }
    let _ = name;
    let (mps, report) = mps_core::MpsGenerator::new(circuit, config)
        .generate_with_report()
        .expect("benchmark circuits are valid");
    (mps, StructureSource::Generated(report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_path_layout_matches_workspace() {
        let p = structure_path(Path::new("/tmp/arts"), "circ02");
        assert_eq!(p, PathBuf::from("/tmp/arts/circ02.mps.json"));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn obtain_generates_and_saves_through_the_workspace() {
        use mps_netlist::benchmarks;
        let dir = std::env::temp_dir().join(format!("mps_cli_obtain_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let bm = benchmarks::by_name("circ01").unwrap();
        let config = scaled_config(&bm.circuit, 0.1, 1);
        let args = PersistArgs {
            load: None,
            save: Some(dir.clone()),
        };
        let (mps, source) = obtain_structure("circ01", &bm.circuit, config.clone(), &args);
        assert!(matches!(source, StructureSource::Generated(_)));
        assert!(structure_path(&dir, "circ01").is_file());

        // And the --load path resolves to the identical structure.
        let args = PersistArgs {
            load: Some(dir.clone()),
            save: None,
        };
        let (loaded, source) = obtain_structure("circ01", &bm.circuit, config, &args);
        assert!(matches!(source, StructureSource::Loaded(_)));
        assert_eq!(loaded.to_json(), mps.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
