//! Shared harness for regenerating every table and figure of the paper.
//!
//! The binaries in `src/bin/` print the tables/figures; the Criterion
//! benches in `benches/` measure the hot paths. Both build on the helpers
//! here so the workload definitions (budgets, query streams, sweeps) are
//! identical everywhere.
//!
//! | Paper artefact | Regenerator |
//! |----------------|-------------|
//! | Table 1        | `cargo run -p mps-bench --bin table1` |
//! | Table 2        | `cargo run -p mps-bench --release --bin table2` |
//! | Fig. 5         | `cargo run -p mps-bench --release --bin fig5` |
//! | Fig. 6         | `cargo run -p mps-bench --release --bin fig6` |
//! | Fig. 7         | `cargo run -p mps-bench --release --bin fig7` |
//! | Quality ablation (A2) | `cargo run -p mps-bench --release --bin quality` |
//! | Design ablations (A3) | `cargo run -p mps-bench --release --bin ablation` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use cli::{
    arg_value, effort_from_args, obtain_structure, parallel_from_args, persist_from_args,
    structure_path, BenchArgs, PersistArgs, StructureSource,
};

use mps_core::{GeneratorConfig, MpsGenerator, MultiPlacementStructure};
use mps_geom::svg::{palette, LabelledRect};
use mps_geom::{Coord, Dims};
use mps_netlist::benchmarks::Benchmark;
use mps_netlist::Circuit;
use mps_placer::{CostCalculator, Placement};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// One row of the regenerated Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Circuit name.
    pub name: String,
    /// Wall-clock generation time.
    pub generation: Duration,
    /// Live placements stored.
    pub placements: usize,
    /// Final row coverage.
    pub coverage: f64,
    /// Mean time of one placement instantiation.
    pub mean_instantiation: Duration,
    /// Full generation report (explorer counters etc.).
    pub report: mps_core::GenerationReport,
}

/// A generation budget scaled to circuit size, mirroring how the paper's
/// generation times grow with block count. `effort` multiplies the budget
/// (1.0 = the default used by the shipped binaries).
#[must_use]
pub fn scaled_config(circuit: &Circuit, effort: f64, seed: u64) -> GeneratorConfig {
    let n = circuit.block_count() as f64;
    let outer = ((40.0 + 14.0 * n) * effort).ceil() as usize;
    let inner = ((60.0 + 6.0 * n) * effort).ceil() as usize;
    GeneratorConfig::builder()
        .outer_iterations(outer.max(10))
        .inner_iterations(inner.max(10))
        .coverage_target(0.93)
        .seed(seed)
        .build()
}

/// Draws a uniformly random in-bounds dimension vector.
#[must_use]
pub fn random_dims(circuit: &Circuit, rng: &mut StdRng) -> Dims {
    circuit
        .dim_bounds()
        .iter()
        .map(|b| {
            (
                rng.random_range(b.w.lo()..=b.w.hi()),
                rng.random_range(b.h.lo()..=b.h.hi()),
            )
        })
        .collect()
}

/// Generates the structure and measures `queries` random instantiations —
/// one Table-2 row — with the default size-scaled budget.
#[must_use]
pub fn table2_row(bm: &Benchmark, effort: f64, queries: usize, seed: u64) -> Table2Row {
    table2_row_with(bm, scaled_config(&bm.circuit, effort, seed), queries, seed)
}

/// [`table2_row`] with an explicit generator configuration (e.g. one that
/// carries multi-start/thread knobs).
#[must_use]
pub fn table2_row_with(
    bm: &Benchmark,
    config: GeneratorConfig,
    queries: usize,
    seed: u64,
) -> Table2Row {
    let (mps, report) = MpsGenerator::new(&bm.circuit, config)
        .generate_with_report()
        .expect("benchmark circuits are valid");
    let mean_instantiation = measure_instantiation(&bm.circuit, &mps, queries, seed ^ 0xABCD);
    Table2Row {
        name: bm.name.to_owned(),
        generation: report.duration,
        placements: report.placements,
        coverage: report.coverage,
        mean_instantiation,
        report,
    }
}

/// Mean wall-clock time of one `instantiate_or_fallback` call over a
/// random query stream.
///
/// # Panics
///
/// Panics if instantiation ever fails to return a placement.
#[must_use]
pub fn measure_instantiation(
    circuit: &Circuit,
    mps: &MultiPlacementStructure,
    queries: usize,
    seed: u64,
) -> Duration {
    let mut rng = StdRng::seed_from_u64(seed);
    let dims: Vec<Dims> = (0..queries.max(1))
        .map(|_| random_dims(circuit, &mut rng))
        .collect();
    let start = Instant::now();
    let mut sink = 0usize;
    for d in &dims {
        sink = sink.wrapping_add(mps.instantiate_or_fallback(d).block_count());
    }
    let elapsed = start.elapsed();
    assert!(sink > 0, "instantiations must produce placements");
    elapsed / dims.len() as u32
}

/// Renders a floorplan to SVG (Figs. 5 and 7).
#[must_use]
pub fn floorplan_svg(circuit: &Circuit, placement: &Placement, dims: &[(Coord, Coord)]) -> String {
    let rects = placement.rects(dims);
    let blocks: Vec<LabelledRect> = rects
        .iter()
        .enumerate()
        .map(|(i, &rect)| LabelledRect {
            rect,
            label: circuit.blocks()[i].name().to_owned(),
            fill: palette(i),
        })
        .collect();
    mps_geom::svg::render(&blocks, 640)
}

/// Fig.-6 data: a 1-D sweep of one block dimension, costing every stored
/// placement (top plot) and the MPS-selected placement (bottom plot).
#[derive(Debug, Clone)]
pub struct Fig6Data {
    /// The swept width values of block 0.
    pub sweep: Vec<Coord>,
    /// Per stored placement id: cost at each sweep point (`None` when
    /// forcing that placement would be illegal at those dimensions).
    pub per_placement: Vec<(u32, Vec<Option<f64>>)>,
    /// Cost of the placement the structure selects at each sweep point
    /// (`None` in uncovered space).
    pub selected: Vec<Option<f64>>,
}

/// Sweeps block 0's width across its range (other dims mid-range), costing
/// every stored placement and the structure's selection.
#[must_use]
pub fn fig6_sweep(circuit: &Circuit, mps: &MultiPlacementStructure, points: usize) -> Fig6Data {
    let bounds = circuit.dim_bounds();
    let base: Vec<(Coord, Coord)> = bounds
        .iter()
        .map(|b| (b.w.midpoint(), b.h.midpoint()))
        .collect();
    let w0 = bounds[0].w;
    let points = points.max(2);
    let sweep: Vec<Coord> = (0..points)
        .map(|k| {
            w0.lo() + ((w0.len() - 1) as f64 * k as f64 / (points - 1) as f64).round() as Coord
        })
        .collect();
    let calc = CostCalculator::new(circuit);
    let fp = mps.floorplan();

    // The swept vector at one sample point: base dims with block 0's
    // width replaced (mid-range values, always a valid vector).
    let at = |w: Coord| {
        let mut dims = base.clone();
        dims[0].0 = w;
        Dims::from_vec_unchecked(dims)
    };
    let mut per_placement = Vec::new();
    for (id, entry) in mps.iter() {
        let series: Vec<Option<f64>> = sweep
            .iter()
            .map(|&w| {
                let dims = at(w);
                entry
                    .placement
                    .is_legal(&dims, Some(&fp))
                    .then(|| calc.cost(&entry.placement, &dims))
            })
            .collect();
        per_placement.push((id.0, series));
    }
    let selected: Vec<Option<f64>> = sweep
        .iter()
        .map(|&w| {
            let dims = at(w);
            mps.instantiate(&dims).map(|p| calc.cost(&p, &dims))
        })
        .collect();
    Fig6Data {
        sweep,
        per_placement,
        selected,
    }
}

/// Formats a Duration the way the paper's Table 2 does (`21m12s`,
/// `0.07s`).
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 60.0 {
        let m = (secs / 60.0).floor() as u64;
        let s = secs - 60.0 * m as f64;
        format!("{m}m{s:.0}s")
    } else if secs >= 0.01 {
        format!("{secs:.2}s")
    } else if secs >= 1e-4 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

/// Renders a markdown table.
#[must_use]
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        headers.iter().map(|_| "---|").collect::<String>()
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Ensures `out/` exists and writes a file into it, returning the path.
///
/// # Panics
///
/// Panics on I/O errors — the binaries have no useful recovery.
pub fn write_artifact(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("out");
    std::fs::create_dir_all(dir).expect("create out/ directory");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write artifact");
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_netlist::benchmarks;

    #[test]
    fn scaled_config_grows_with_circuit() {
        let small = scaled_config(&benchmarks::circ01(), 1.0, 0);
        let large = scaled_config(&benchmarks::benchmark24(), 1.0, 0);
        assert!(large.explorer.outer_iterations > small.explorer.outer_iterations);
        assert!(large.bdio.iterations > small.bdio.iterations);
    }

    #[test]
    fn random_dims_are_admitted() {
        let c = benchmarks::mixer();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(c.admits_dims(&random_dims(&c, &mut rng)));
        }
    }

    #[test]
    fn table2_row_smoke() {
        let bm = benchmarks::by_name("circ01").unwrap();
        let row = table2_row(&bm, 0.2, 50, 1);
        assert_eq!(row.name, "circ01");
        assert!(row.placements > 0);
        assert!(row.mean_instantiation < Duration::from_millis(50));
    }

    #[test]
    fn fig6_selected_points_are_finite() {
        let bm = benchmarks::by_name("circ01").unwrap();
        let config = scaled_config(&bm.circuit, 0.3, 3);
        let mps = MpsGenerator::new(&bm.circuit, config).generate().unwrap();
        let data = fig6_sweep(&bm.circuit, &mps, 20);
        assert_eq!(data.sweep.len(), 20);
        for (k, sel) in data.selected.iter().enumerate() {
            if let Some(cost) = sel {
                assert!(cost.is_finite(), "point {k}");
            }
        }
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(1272)), "21m12s");
        assert_eq!(fmt_duration(Duration::from_millis(70)), "0.07s");
        assert_eq!(fmt_duration(Duration::from_micros(120)), "0.12ms");
        assert_eq!(fmt_duration(Duration::from_nanos(900)), "0.9us");
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("| 1 | 2 |"));
    }

    #[test]
    fn floorplan_svg_contains_block_names() {
        let c = benchmarks::two_stage_opamp();
        let dims = c.min_dims();
        let p = mps_placer::Template::expert_default(&c, 2).instantiate(&dims);
        let svg = floorplan_svg(&c, &p, &dims);
        assert!(svg.contains("DP"));
        assert!(svg.contains("CC"));
    }
}
