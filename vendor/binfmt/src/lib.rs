//! Offline stand-in for a length-prefixed binary codec crate.
//!
//! The model is the one streaming circuit writers use (ckt-style): a
//! file or frame starts with a fixed 4-byte magic plus a `u16` format
//! version, and the body is a sequence of primitive fields — little-
//! endian fixed-width integers, IEEE-754 `f64` bit patterns, LEB128
//! varints (zigzag for signed) — with every variable-length section
//! prefixed by its element count. Encoding streams into any
//! [`std::io::Write`]; decoding streams out of any [`std::io::Read`]
//! and **never trusts a length**: every count is checked against a
//! caller-supplied cap before a single byte is allocated, so a
//! truncated or hostile artifact fails with a typed [`Error`], not an
//! OOM.
//!
//! Types opt in by implementing [`Encode`] and [`Decode`]. The trait
//! impls live next to the types they serialize (exactly like the
//! vendored `serde` subset) so invariant-preserving constructors stay
//! private to their crates.
//!
//! ```
//! use binfmt::{Decoder, Encoder};
//!
//! let mut buf = Vec::new();
//! let mut enc = Encoder::new(&mut buf);
//! enc.magic(*b"DEMO", 1).unwrap();
//! enc.varint(300).unwrap();
//! enc.zigzag(-7).unwrap();
//! enc.f64(1.5).unwrap();
//!
//! let mut dec = Decoder::new(buf.as_slice());
//! assert_eq!(dec.magic(*b"DEMO").unwrap(), 1);
//! assert_eq!(dec.varint().unwrap(), 300);
//! assert_eq!(dec.zigzag().unwrap(), -7);
//! assert_eq!(dec.f64().unwrap(), 1.5);
//! dec.finish().unwrap();
//! ```

#![forbid(unsafe_code)]

use std::fmt;
use std::io::{Read, Write};

/// Longest LEB128 encoding of a `u64`: ceil(64 / 7) bytes.
const MAX_VARINT_BYTES: usize = 10;

/// A typed decode failure. Encoding only fails with [`std::io::Error`]
/// (the encoder never inspects values); decoding distinguishes
/// truncation, malformed content, and transport errors so callers can
/// report "file is cut short" differently from "file is lying".
#[derive(Debug)]
pub enum Error {
    /// The input ended in the middle of a field.
    Eof,
    /// The bytes decoded, but the content violates the format: bad
    /// magic, unsupported version, over-long varint, a count beyond
    /// the caller's cap, trailing garbage, ...
    Malformed(String),
    /// The underlying reader failed.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Eof => write!(f, "unexpected end of input"),
            Error::Malformed(msg) => write!(f, "malformed input: {msg}"),
            Error::Io(e) => write!(f, "read failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Error::Eof
        } else {
            Error::Io(e)
        }
    }
}

/// Shorthand for a malformed-input error.
pub fn malformed(msg: impl Into<String>) -> Error {
    Error::Malformed(msg.into())
}

/// A type that knows how to write itself through an [`Encoder`].
pub trait Encode {
    /// Append this value's encoding to `enc`.
    fn encode<W: Write>(&self, enc: &mut Encoder<W>) -> std::io::Result<()>;
}

/// A type that knows how to read itself back through a [`Decoder`],
/// re-validating every invariant the in-memory type guarantees.
pub trait Decode: Sized {
    /// Decode one value, consuming exactly its encoding.
    fn decode<R: Read>(dec: &mut Decoder<R>) -> Result<Self, Error>;
}

/// Streaming writer of binfmt primitives over any [`Write`].
pub struct Encoder<W: Write> {
    out: W,
}

impl<W: Write> Encoder<W> {
    /// Wrap a sink.
    pub fn new(out: W) -> Self {
        Encoder { out }
    }

    /// Write a 4-byte magic followed by a little-endian `u16` version.
    pub fn magic(&mut self, magic: [u8; 4], version: u16) -> std::io::Result<()> {
        self.out.write_all(&magic)?;
        self.u16(version)
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) -> std::io::Result<()> {
        self.out.write_all(&[v])
    }

    /// Write a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> std::io::Result<()> {
        self.out.write_all(&v.to_le_bytes())
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> std::io::Result<()> {
        self.out.write_all(&v.to_le_bytes())
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> std::io::Result<()> {
        self.out.write_all(&v.to_le_bytes())
    }

    /// Write an `f64` as its little-endian IEEE-754 bit pattern.
    /// Unlike JSON this is lossless and total: `NaN` and the
    /// infinities round-trip bit-exactly.
    pub fn f64(&mut self, v: f64) -> std::io::Result<()> {
        self.out.write_all(&v.to_bits().to_le_bytes())
    }

    /// Write a LEB128 varint: 7 value bits per byte, high bit set on
    /// every byte but the last. Small counts cost one byte.
    pub fn varint(&mut self, mut v: u64) -> std::io::Result<()> {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                return self.u8(byte);
            }
            self.u8(byte | 0x80)?;
        }
    }

    /// Write a signed value as a zigzag-mapped varint, so small
    /// magnitudes of either sign stay short.
    pub fn zigzag(&mut self, v: i64) -> std::io::Result<()> {
        self.varint(((v << 1) ^ (v >> 63)) as u64)
    }

    /// Write a varint-length-prefixed byte section.
    pub fn bytes(&mut self, v: &[u8]) -> std::io::Result<()> {
        self.varint(v.len() as u64)?;
        self.out.write_all(v)
    }

    /// Write a varint-length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> std::io::Result<()> {
        self.bytes(v.as_bytes())
    }

    /// Write an optional value: a one-byte presence tag, then the
    /// value when present.
    pub fn option<T: Encode>(&mut self, v: Option<&T>) -> std::io::Result<()> {
        match v {
            None => self.u8(0),
            Some(inner) => {
                self.u8(1)?;
                inner.encode(self)
            }
        }
    }

    /// Write a varint-count-prefixed sequence.
    pub fn seq<T: Encode>(&mut self, items: &[T]) -> std::io::Result<()> {
        self.varint(items.len() as u64)?;
        for item in items {
            item.encode(self)?;
        }
        Ok(())
    }

    /// Flush the underlying sink.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }

    /// Unwrap the sink.
    pub fn into_inner(self) -> W {
        self.out
    }
}

/// Streaming reader of binfmt primitives over any [`Read`].
///
/// Every count-consuming method takes a cap; a decoded count beyond
/// it is refused *before* allocation. Caps are per-field sanity bounds
/// ("a circuit has at most a million blocks"), not a parser budget.
pub struct Decoder<R: Read> {
    inp: R,
}

impl<R: Read> Decoder<R> {
    /// Wrap a source.
    pub fn new(inp: R) -> Self {
        Decoder { inp }
    }

    /// Read and verify a 4-byte magic; return the `u16` version that
    /// follows. Wrong magic is [`Error::Malformed`], so "this is not
    /// even our format" is distinguishable from a version skew.
    pub fn magic(&mut self, expect: [u8; 4]) -> Result<u16, Error> {
        let mut got = [0u8; 4];
        self.inp.read_exact(&mut got)?;
        if got != expect {
            return Err(malformed(format!(
                "bad magic: expected {:?}, found {:?}",
                DisplayMagic(expect),
                DisplayMagic(got)
            )));
        }
        self.u16()
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, Error> {
        let mut b = [0u8; 1];
        self.inp.read_exact(&mut b)?;
        Ok(b[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, Error> {
        let mut b = [0u8; 2];
        self.inp.read_exact(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, Error> {
        let mut b = [0u8; 4];
        self.inp.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, Error> {
        let mut b = [0u8; 8];
        self.inp.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, Error> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a LEB128 varint. Encodings longer than ten bytes, and
    /// ten-byte encodings whose final byte overflows 64 bits, are
    /// malformed — every value has exactly one accepted encoding
    /// length ceiling.
    pub fn varint(&mut self) -> Result<u64, Error> {
        let mut v: u64 = 0;
        for i in 0..MAX_VARINT_BYTES {
            let byte = self.u8()?;
            let bits = (byte & 0x7f) as u64;
            if i == MAX_VARINT_BYTES - 1 && bits > 1 {
                return Err(malformed("varint overflows u64"));
            }
            v |= bits << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(malformed("varint longer than 10 bytes"))
    }

    /// Read a zigzag-mapped varint back to a signed value.
    pub fn zigzag(&mut self) -> Result<i64, Error> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Read a varint count and check it against `max` before any
    /// allocation happens.
    pub fn len(&mut self, max: usize, what: &str) -> Result<usize, Error> {
        let n = self.varint()?;
        if n > max as u64 {
            return Err(malformed(format!("{what} count {n} exceeds cap {max}")));
        }
        Ok(n as usize)
    }

    /// Read a varint-length-prefixed byte section, capped at `max`.
    pub fn bytes(&mut self, max: usize, what: &str) -> Result<Vec<u8>, Error> {
        let n = self.len(max, what)?;
        let mut buf = vec![0u8; n];
        self.inp.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Read a varint-length-prefixed UTF-8 string, capped at `max`
    /// bytes.
    pub fn str(&mut self, max: usize, what: &str) -> Result<String, Error> {
        let raw = self.bytes(max, what)?;
        String::from_utf8(raw).map_err(|_| malformed(format!("{what} is not valid UTF-8")))
    }

    /// Read an optional value written by [`Encoder::option`].
    pub fn option<T: Decode>(&mut self) -> Result<Option<T>, Error> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(self)?)),
            tag => Err(malformed(format!("option tag must be 0 or 1, found {tag}"))),
        }
    }

    /// Read a varint-count-prefixed sequence, capped at `max`
    /// elements.
    pub fn seq<T: Decode>(&mut self, max: usize, what: &str) -> Result<Vec<T>, Error> {
        let n = self.len(max, what)?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(T::decode(self)?);
        }
        Ok(items)
    }

    /// Assert the input is exhausted. Trailing bytes after a complete
    /// decode mean the artifact is not what it claims to be.
    pub fn finish(mut self) -> Result<(), Error> {
        let mut probe = [0u8; 1];
        match self.inp.read(&mut probe) {
            Ok(0) => Ok(()),
            Ok(_) => Err(malformed("trailing bytes after the final section")),
            Err(e) => Err(Error::Io(e)),
        }
    }

    /// Unwrap the source (for callers that frame their own tail).
    pub fn into_inner(self) -> R {
        self.inp
    }
}

/// Render a magic as ASCII-ish for error messages.
struct DisplayMagic([u8; 4]);

impl fmt::Debug for DisplayMagic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"")?;
        for &b in &self.0 {
            if b.is_ascii_graphic() {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(write: impl FnOnce(&mut Encoder<&mut Vec<u8>>)) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut enc = Encoder::new(&mut buf);
        write(&mut enc);
        buf
    }

    #[test]
    fn fixed_width_ints_are_little_endian() {
        let buf = roundtrip(|e| {
            e.u16(0x0102).unwrap();
            e.u32(0x0304_0506).unwrap();
            e.u64(0x0708_090a_0b0c_0d0e).unwrap();
        });
        assert_eq!(
            buf,
            [2, 1, 6, 5, 4, 3, 0x0e, 0x0d, 0x0c, 0x0b, 0x0a, 0x09, 0x08, 0x07]
        );
    }

    #[test]
    fn varint_boundaries_roundtrip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let buf = roundtrip(|e| e.varint(v).unwrap());
            let mut dec = Decoder::new(buf.as_slice());
            assert_eq!(dec.varint().unwrap(), v, "value {v}");
            dec.finish().unwrap();
        }
    }

    #[test]
    fn varint_sizes_match_leb128() {
        assert_eq!(roundtrip(|e| e.varint(127).unwrap()).len(), 1);
        assert_eq!(roundtrip(|e| e.varint(128).unwrap()).len(), 2);
        assert_eq!(roundtrip(|e| e.varint(u64::MAX).unwrap()).len(), 10);
    }

    #[test]
    fn zigzag_roundtrips_both_signs() {
        for v in [0i64, 1, -1, 2, -2, 63, -64, i64::MAX, i64::MIN] {
            let buf = roundtrip(|e| e.zigzag(v).unwrap());
            assert_eq!(Decoder::new(buf.as_slice()).zigzag().unwrap(), v);
        }
        // Small magnitudes stay short regardless of sign.
        assert_eq!(roundtrip(|e| e.zigzag(-1).unwrap()).len(), 1);
    }

    #[test]
    fn overlong_varint_is_malformed() {
        // Eleven continuation bytes: no terminating byte within the cap.
        let buf = vec![0x80u8; 11];
        assert!(matches!(
            Decoder::new(buf.as_slice()).varint(),
            Err(Error::Malformed(_))
        ));
        // Ten bytes whose final byte carries bits beyond 2^64.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        assert!(matches!(
            Decoder::new(buf.as_slice()).varint(),
            Err(Error::Malformed(_))
        ));
    }

    #[test]
    fn f64_roundtrips_bit_exactly_including_non_finite() {
        for v in [
            0.0f64,
            -0.0,
            1.5,
            -1e300,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let buf = roundtrip(|e| e.f64(v).unwrap());
            let back = Decoder::new(buf.as_slice()).f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn magic_and_version_roundtrip() {
        let buf = roundtrip(|e| e.magic(*b"DEMO", 7).unwrap());
        assert_eq!(Decoder::new(buf.as_slice()).magic(*b"DEMO").unwrap(), 7);
        let err = Decoder::new(buf.as_slice()).magic(*b"ELSE").unwrap_err();
        assert!(
            matches!(err, Error::Malformed(ref m) if m.contains("bad magic")),
            "{err}"
        );
    }

    #[test]
    fn truncation_is_eof_not_io() {
        let buf = roundtrip(|e| e.u64(42).unwrap());
        assert!(matches!(Decoder::new(&buf[..3]).u64(), Err(Error::Eof)));
    }

    #[test]
    fn string_and_bytes_respect_caps() {
        let buf = roundtrip(|e| e.str("hello").unwrap());
        let mut dec = Decoder::new(buf.as_slice());
        assert_eq!(dec.str(16, "name").unwrap(), "hello");
        dec.finish().unwrap();

        let err = Decoder::new(buf.as_slice()).str(3, "name").unwrap_err();
        assert!(
            matches!(err, Error::Malformed(ref m) if m.contains("cap")),
            "{err}"
        );

        let buf = roundtrip(|e| e.bytes(&[0xff, 0xfe]).unwrap());
        let err = Decoder::new(buf.as_slice()).str(16, "name").unwrap_err();
        assert!(
            matches!(err, Error::Malformed(ref m) if m.contains("UTF-8")),
            "{err}"
        );
    }

    #[test]
    fn hostile_count_fails_before_allocation() {
        // A section claiming u64::MAX elements must be refused by the
        // cap check, not by the allocator.
        let buf = roundtrip(|e| e.varint(u64::MAX).unwrap());
        let err = Decoder::new(buf.as_slice()).len(1024, "rows").unwrap_err();
        assert!(
            matches!(err, Error::Malformed(ref m) if m.contains("cap")),
            "{err}"
        );
    }

    #[test]
    fn option_roundtrips_and_rejects_bad_tags() {
        #[derive(Debug)]
        struct V(u64);
        impl Encode for V {
            fn encode<W: Write>(&self, enc: &mut Encoder<W>) -> std::io::Result<()> {
                enc.varint(self.0)
            }
        }
        impl Decode for V {
            fn decode<R: Read>(dec: &mut Decoder<R>) -> Result<Self, Error> {
                Ok(V(dec.varint()?))
            }
        }
        let buf = roundtrip(|e| {
            e.option(None::<&V>).unwrap();
            e.option(Some(&V(9))).unwrap();
        });
        let mut dec = Decoder::new(buf.as_slice());
        assert!(dec.option::<V>().unwrap().is_none());
        assert_eq!(dec.option::<V>().unwrap().unwrap().0, 9);
        dec.finish().unwrap();

        let err = Decoder::new([2u8].as_slice()).option::<V>().unwrap_err();
        assert!(matches!(err, Error::Malformed(_)));
    }

    #[test]
    fn seq_roundtrips() {
        struct V(i64);
        impl Encode for V {
            fn encode<W: Write>(&self, enc: &mut Encoder<W>) -> std::io::Result<()> {
                enc.zigzag(self.0)
            }
        }
        impl Decode for V {
            fn decode<R: Read>(dec: &mut Decoder<R>) -> Result<Self, Error> {
                Ok(V(dec.zigzag()?))
            }
        }
        let items = [V(-3), V(0), V(1_000_000)];
        let buf = roundtrip(|e| e.seq(&items).unwrap());
        let mut dec = Decoder::new(buf.as_slice());
        let back: Vec<V> = dec.seq(10, "items").unwrap();
        assert_eq!(
            back.iter().map(|v| v.0).collect::<Vec<_>>(),
            [-3, 0, 1_000_000]
        );
        dec.finish().unwrap();
    }

    #[test]
    fn trailing_bytes_are_refused() {
        let mut buf = roundtrip(|e| e.u8(1).unwrap());
        buf.push(0xaa);
        let mut dec = Decoder::new(buf.as_slice());
        dec.u8().unwrap();
        assert!(matches!(dec.finish(), Err(Error::Malformed(_))));
    }
}
