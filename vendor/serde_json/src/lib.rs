//! Offline stand-in for the `serde_json` crate.
//!
//! The text layer over the vendored `serde` value tree: [`to_string`],
//! [`to_string_pretty`] and [`from_str`] look exactly like real serde_json
//! at the call site. The parser is a recursive-descent reader with a
//! nesting-depth cap (malformed or adversarial input yields an [`Error`],
//! never a panic or stack overflow); the printer emits floats through
//! Rust's shortest-round-trip formatting, so every finite `f64` survives a
//! save/load cycle bit-exactly, and refuses non-finite floats with a typed
//! [`Error`] rather than silently degrading them to `null`.
//!
//! ```
//! let json = serde_json::to_string(&vec![1i64, 2, 3]).unwrap();
//! assert_eq!(json, "[1,2,3]");
//! let back: Vec<i64> = serde_json::from_str(&json).unwrap();
//! assert_eq!(back, vec![1, 2, 3]);
//! assert!(serde_json::from_str::<Vec<i64>>("[1,2").is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fmt::Write as _;

pub use serde::{Map, Number, Value};

/// Maximum container nesting the parser accepts. The MPS format nests a
/// handful of levels; the cap only exists so hostile input errors out
/// instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

// ---------------------------------------------------------------------
// Error
// ---------------------------------------------------------------------

/// A JSON (de)serialization error: what went wrong and, for syntax
/// errors, where in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    /// Byte offset of the error in the input, for parse errors.
    offset: Option<usize>,
}

impl Error {
    fn syntax(message: impl Into<String>, offset: usize) -> Self {
        Self {
            message: message.into(),
            offset: Some(offset),
        }
    }

    fn data(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
            offset: None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte offset {o}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::data(e)
    }
}

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite float
/// (`NaN`/`±∞`) — JSON has no spelling for those, and silently writing
/// `null` would corrupt the artifact on the next load.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to a human-readable, 2-space-indented JSON string.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite float (see
/// [`to_string`]).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    out.push('\n');
    Ok(out)
}

/// Converts a value into the [`Value`] tree.
#[must_use]
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the tree does not encode a valid `T`.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Parses a JSON string into a typed value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON (with the byte offset of the first
/// problem) or when the parsed tree does not encode a valid `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    from_value(&value)
}

// ---------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n)?,
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            write_break(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1)?;
            }
            write_break(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn write_break(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_number(out: &mut String, n: Number) -> Result<(), Error> {
    match n {
        Number::PosInt(u) => {
            let _ = write!(out, "{u}");
        }
        Number::NegInt(i) => {
            let _ = write!(out, "{i}");
        }
        Number::Float(f) => {
            if !f.is_finite() {
                // JSON cannot represent NaN or infinities. Writing `null`
                // here (what permissive writers do) would silently turn a
                // number into a non-number on the next load, so refuse.
                return Err(Error::data(format!(
                    "cannot serialize non-finite float {f} as JSON"
                )));
            }
            // Rust's Display for f64 prints the shortest decimal string
            // that parses back to the same bits — exact round-trips.
            let _ = write!(out, "{f}");
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// Parses a JSON string into a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] with a byte offset on the first syntax problem.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_whitespace();
    let value = p.parse_value(0)?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(Error::syntax("trailing characters after JSON value", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::syntax(
                format!("expected `{}`", char::from(byte)),
                self.pos,
            ))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::syntax(format!("expected `{lit}`"), self.pos))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::syntax("nesting depth limit exceeded", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(Error::syntax("unexpected character", self.pos)),
            None => Err(Error::syntax("unexpected end of input", self.pos)),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::syntax("expected `,` or `]` in array", self.pos)),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::syntax("expected `,` or `}` in object", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::syntax("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.parse_unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::syntax("invalid escape sequence", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(Error::syntax("unescaped control character", self.pos));
                }
                Some(_) => {
                    // Consume the maximal run of ordinary characters in
                    // one step. The run ends only at ASCII bytes (quote,
                    // backslash, control) and the input is a valid &str,
                    // so the slice always falls on char boundaries.
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("runs of a valid &str cut at ASCII boundaries are valid UTF-8");
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(Error::syntax("truncated \\u escape", self.pos));
        };
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|h| u16::from_str_radix(h, 16).ok())
            .ok_or_else(|| Error::syntax("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(hex)
    }

    fn parse_unicode_escape(&mut self) -> Result<char, Error> {
        let start = self.pos;
        let first = self.parse_hex4()?;
        // Surrogate pair handling.
        if (0xD800..0xDC00).contains(&first) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.parse_hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let c = 0x10000
                        + ((u32::from(first) - 0xD800) << 10)
                        + (u32::from(second) - 0xDC00);
                    return char::from_u32(c)
                        .ok_or_else(|| Error::syntax("invalid surrogate pair", start));
                }
            }
            return Err(Error::syntax("unpaired surrogate in \\u escape", start));
        }
        char::from_u32(u32::from(first)).ok_or_else(|| Error::syntax("invalid \\u escape", start))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(Error::syntax("expected digit", self.pos));
        }
        let leading_zero = self.peek() == Some(b'0');
        self.pos += 1;
        if leading_zero && matches!(self.peek(), Some(b'0'..=b'9')) {
            // JSON (and real serde_json) reject `01`, `-007`, ….
            return Err(Error::syntax("leading zeros are not allowed", self.pos - 1));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(Error::syntax("expected fractional digit", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(Error::syntax("expected exponent digit", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    // Preserve the sign of -0 by treating it as a float,
                    // like serde_json does.
                    if i != 0 {
                        return Ok(Value::Number(Number::NegInt(i)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
        }
        let f: f64 = text
            .parse()
            .map_err(|_| Error::syntax("invalid number", start))?;
        if f.is_finite() {
            Ok(Value::Number(Number::Float(f)))
        } else {
            Err(Error::syntax("number out of f64 range", start))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let s = to_string(v).unwrap();
        parse(&s).unwrap()
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Number(Number::PosInt(u64::MAX)),
            Value::Number(Number::NegInt(i64::MIN)),
            Value::Number(Number::Float(1.25)),
            Value::String("he\"llo\n\\ \u{1F600} \u{7}".into()),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn float_shortest_roundtrip_is_exact() {
        for f in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, 990.0, 1e-7] {
            let v = Value::Number(Number::Float(f));
            let s = to_string(&v).unwrap();
            match parse(&s).unwrap() {
                Value::Number(n) => assert_eq!(n.as_f64(), f, "{s}"),
                other => panic!("expected number, got {other:?}"),
            }
        }
    }

    #[test]
    fn integral_floats_print_as_integers_and_read_back() {
        let s = to_string(&Value::Number(Number::Float(990.0))).unwrap();
        assert_eq!(s, "990");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 990.0);
    }

    #[test]
    fn non_finite_floats_are_refused_not_nulled() {
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let v = Value::Number(Number::Float(f));
            let err = to_string(&v).expect_err("non-finite floats must not serialize");
            assert!(err.to_string().contains("non-finite"), "{err}");
            assert!(to_string_pretty(&v).is_err());
            // Also when buried inside a container: the error must
            // surface, not a partially-written `null`.
            let nested = Value::Array(vec![Value::Bool(true), v]);
            assert!(to_string(&nested).is_err());
        }
    }

    #[test]
    fn containers_roundtrip() {
        let mut m = Map::new();
        m.insert("k", Value::Array(vec![Value::Null, Value::Bool(true)]));
        m.insert("empty", Value::Object(Map::new()));
        let v = Value::Object(m);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let mut m = Map::new();
        m.insert("a", Value::Number(Number::PosInt(1)));
        m.insert("b", Value::Array(vec![Value::Number(Number::NegInt(-2))]));
        let v = Value::Object(m);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
        assert!(pretty.ends_with('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "[",
            "[1,",
            "{\"a\"",
            "{\"a\":}",
            "nul",
            "tru",
            "01x",
            "01",
            "-007.5",
            "-",
            "1e",
            "\"unterminated",
            "\"bad \\q escape\"",
            "[1] trailing",
            "\"\\ud800\"",
            "{1: 2}",
            "[1 2]",
            "\u{7}",
        ] {
            assert!(parse(bad).is_err(), "input {bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            parse("\"\\u0041\\ud83d\\ude00\"").unwrap(),
            Value::String("A\u{1F600}".into())
        );
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse("{\"a\":1,\"a\":2}").unwrap();
        assert_eq!(v.get("a"), Some(&Value::Number(Number::PosInt(2))));
    }

    #[test]
    fn negative_zero_stays_a_float() {
        match parse("-0").unwrap() {
            Value::Number(Number::Float(f)) => {
                assert!(f == 0.0 && f.is_sign_negative());
            }
            other => panic!("expected float, got {other:?}"),
        }
    }
}
