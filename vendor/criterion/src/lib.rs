//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the criterion API its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], [`Bencher::iter`] and
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`SamplingMode`] and
//! [`BatchSize`]. Measurements are simple wall-clock means over the
//! configured sample count — good enough to compare orders of magnitude
//! and spot regressions, without criterion's statistics or HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How samples are scheduled. Accepted for API compatibility; the
/// stand-in always measures flat samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// Criterion's automatic choice.
    Auto,
    /// Same work per sample.
    Flat,
    /// Work grows linearly per sample.
    Linear,
}

/// Batch sizing for [`Bencher::iter_batched`]. Accepted for API
/// compatibility; the stand-in always runs one setup per measured call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id built from a function name and a parameter.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Drives the measured closures of one benchmark.
pub struct Bencher {
    samples: usize,
    /// Mean wall-clock duration of one routine call, filled by the `iter*`
    /// methods.
    measured: Option<Duration>,
}

impl Bencher {
    /// Measures `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then timed samples.
        let _ = std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            let _ = std::hint::black_box(routine());
        }
        self.measured = Some(start.elapsed() / self.samples as u32);
    }

    /// Measures `routine` over inputs produced by `setup`, excluding the
    /// setup cost from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let _ = std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.measured = Some(total / self.samples as u32);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility (the stand-in is always flat).
    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (the stand-in runs a fixed sample
    /// count rather than a time budget).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its mean time.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.criterion.sample_size,
            measured: None,
        };
        f(&mut bencher);
        report(&self.name, &id.id, bencher.measured);
        self
    }

    /// Ends the group (printing is immediate; this is a no-op for
    /// compatibility).
    pub fn finish(&mut self) {}
}

/// Benchmark driver. Mirrors criterion's entry type.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            measured: None,
        };
        f(&mut bencher);
        report("", id, bencher.measured);
        self
    }
}

fn report(group: &str, id: &str, measured: Option<Duration>) {
    let label = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    match measured {
        Some(d) => println!("bench {label:<40} {d:>12.2?} /iter"),
        None => println!("bench {label:<40} (no measurement)"),
    }
}

/// Re-export so existing `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .sampling_mode(SamplingMode::Flat)
            .measurement_time(Duration::from_millis(1));
        group.bench_function(BenchmarkId::from_parameter("direct"), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_bencher_run() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
