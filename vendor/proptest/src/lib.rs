//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the proptest API its property suites use: the
//! [`proptest!`] macro, range/tuple/`prop_map`/collection strategies,
//! `prop::bool::ANY`, [`ProptestConfig`], [`TestCaseError`] and the
//! `prop_assert*` macros.
//!
//! Semantics: each test runs `cases` randomized executions drawn from a
//! deterministic per-case seed, so failures are reproducible run-to-run.
//! There is **no shrinking** — a failing case reports its case index and
//! message only. That is a quality-of-diagnosis loss, not a coverage
//! loss, and keeps the stand-in small.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Re-exports matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Per-test runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to execute.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` randomized executions.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A rejected or failed test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Marks the case as failed with a reason (usable point-free in
    /// `map_err(TestCaseError::fail)`).
    pub fn fail<T: std::fmt::Display>(reason: T) -> Self {
        Self(reason.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )+};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// The `prop::` namespace: primitive strategy modules.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy generating unbiased booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct AnyBool;

        impl Strategy for AnyBool {
            type Value = bool;
            fn generate(&self, rng: &mut StdRng) -> bool {
                rng.random()
            }
        }

        /// Uniformly random `bool`.
        pub const ANY: AnyBool = AnyBool;
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Element counts acceptable to [`vec`]: a fixed size or a range.
        pub trait IntoSizeRange {
            /// Draws a length.
            fn sample_len(&self, rng: &mut StdRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn sample_len(&self, _rng: &mut StdRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn sample_len(&self, rng: &mut StdRng) -> usize {
                rng.random_range(self.clone())
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut StdRng) -> usize {
                rng.random_range(self.clone())
            }
        }

        /// Strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = self.len.sample_len(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `Vec`s of `len` elements drawn from `element`.
        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

/// Runs `case` once per configured case with a deterministic per-case RNG.
/// Internal runtime of the [`proptest!`] macro.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
) {
    // Deterministic master seed per test name, so suites are reproducible
    // and distinct tests see distinct streams.
    let name_hash = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    });
    for k in 0..config.cases {
        let mut rng =
            StdRng::seed_from_u64(name_hash ^ (u64::from(k)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest case {k}/{} of `{test_name}` failed: {e}",
                config.cases
            );
        }
    }
}

/// Property-test entry point; mirrors `proptest::proptest!` for the
/// grammar this workspace uses.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($config) $($rest)*);
    };
    (@with ($config:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(stringify!($name), &config, |proptest_case_rng| {
                    $( let $arg = ($strat).generate(proptest_case_rng); )+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (a, b) => $crate::prop_assert!(
                *a == *b,
                "assertion failed: `{:?}` == `{:?}`", a, b
            ),
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (a, b) => $crate::prop_assert!(
                *a == *b,
                "assertion failed: `{:?}` == `{:?}`: {}", a, b, format!($($fmt)+)
            ),
        }
    };
}

/// Fails the current case unless the operands compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (a, b) => $crate::prop_assert!(*a != *b, "assertion failed: `{:?}` != `{:?}`", a, b),
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in -10i64..10, b in 0usize..5) {
            prop_assert!((-10..10).contains(&a));
            prop_assert!(b < 5);
        }

        #[test]
        fn tuples_and_maps(v in (0i64..5, 0i64..5).prop_map(|(x, y)| x + y)) {
            prop_assert!((0..=8).contains(&v));
        }

        #[test]
        fn vec_lengths(xs in prop::collection::vec(0u8..3, 1..7)) {
            prop_assert!(!xs.is_empty() && xs.len() < 7);
            for x in xs {
                prop_assert!(x < 3, "x was {}", x);
            }
        }

        #[test]
        fn bool_any_and_question_mark(flag in prop::bool::ANY) {
            let parsed: i32 = "7".parse().map_err(TestCaseError::fail)?;
            prop_assert_eq!(parsed, 7);
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn explicit_config_runs(x in 0u32..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_index() {
        crate::run_cases("always_fails", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy as _;
        let collect = || {
            let mut out = Vec::new();
            crate::run_cases("det", &ProptestConfig::with_cases(8), |rng| {
                out.push((0i64..1_000).generate(rng));
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
