//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the (small) subset of the rand 0.9 API it actually uses instead of
//! pulling the real crate: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `random`, `random_range` and
//! `random_bool`. Everything is deterministic by seed, which is all the
//! reproduction relies on — no code in this workspace depends on the exact
//! byte stream of upstream `StdRng`.
//!
//! [`rngs::StdRng`] is xoshiro256++ (Blackman & Vigna), seeded from a
//! `u64` through SplitMix64 exactly as the algorithm's authors recommend.
//! It is fast, passes BigCrush, and — the property the generator actually
//! needs — distinct seeds yield decorrelated streams.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let a: u64 = rng.random();
//! let b = rng.random_range(0..10usize);
//! assert!(b < 10);
//! let mut again = StdRng::seed_from_u64(7);
//! assert_eq!(again.random::<u64>(), a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of randomness: everything else is derived from
/// [`RngCore::next_u64`].
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Constructing generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw bits (the subset of
/// rand's `StandardUniform` distribution this workspace uses).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types over which a uniform range can be sampled.
pub trait UniformInt: Copy + PartialOrd {
    /// Offset of `self` from `lo` as unsigned width.
    fn delta(self, lo: Self) -> u64;
    /// `lo` advanced by `offset` (never overflows for in-range offsets).
    fn advance(lo: Self, offset: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl UniformInt for $t {
            #[inline]
            fn delta(self, lo: Self) -> u64 {
                (self as $wide).wrapping_sub(lo as $wide) as u64
            }
            #[inline]
            fn advance(lo: Self, offset: u64) -> Self {
                (lo as $wide).wrapping_add(offset as $wide) as $t
            }
        }
    )*};
}

impl_uniform_int!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

/// Ranges acceptable to [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` via multiply-shift; `span == 0` encodes
/// the full 2^64 span.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.delta(self.start);
        T::advance(self.start, uniform_below(rng, span))
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi.delta(lo).wrapping_add(1); // 0 encodes the full span
        T::advance(lo, uniform_below(rng, span))
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] — mirrors `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.random::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.random::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.random_range(0..7usize);
            assert!(u < 7);
            let f = rng.random_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[rng.random_range(0..=2usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn full_i64_inclusive_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(11);
        let _ = rng.random_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.1));
    }

    #[test]
    fn negative_spans_sample_correctly() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.random_range(-100i64..-50);
            assert!((-100..-50).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5i64..5);
    }
}
