//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of serde's surface it actually uses — the [`Serialize`] and
//! [`Deserialize`] traits plus impls for the primitives and containers the
//! MPS type stack is built from. Two deliberate simplifications versus the
//! real crate:
//!
//! 1. **Value-tree data model.** Instead of serde's visitor machinery,
//!    serialization converts to an in-memory JSON [`Value`] tree
//!    ([`Serialize::to_value`]) and deserialization reads one back
//!    ([`Deserialize::from_value`]). The sibling `serde_json` vendor crate
//!    supplies the text layer (`to_string` / `from_str`), so call sites
//!    look exactly like real serde_json usage.
//! 2. **No proc-macro derive.** Per-type impls are hand-written in the
//!    defining crates; the declarative macros [`impl_serde_struct!`],
//!    [`impl_serde_newtype!`] and [`impl_serde_unit_enum!`] generate the
//!    boilerplate for types without extra invariants. Types *with*
//!    invariants (intervals, rectangles, circuits, …) write their
//!    [`Deserialize`] by hand so malformed input is rejected with an
//!    [`Error`] instead of constructing an ill-formed value — the
//!    validate-don't-trust discipline the persistence layer is built on.
//!
//! ```
//! use serde::{Deserialize, Serialize, Value};
//!
//! let v = vec![1i64, 2, 3].to_value();
//! assert_eq!(Vec::<i64>::from_value(&v).unwrap(), vec![1, 2, 3]);
//! assert!(Vec::<i64>::from_value(&Value::Bool(true)).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

// ---------------------------------------------------------------------
// The data model
// ---------------------------------------------------------------------

/// A JSON value tree — the interchange data model of this serde subset
/// (re-exported by the vendored `serde_json` as `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object. Key order is preserved, so serialization is
    /// deterministic (the golden-fixture byte-stability tests rely on it).
    Object(Map),
}

impl Value {
    /// The object behind the value, if it is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array behind the value, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string behind the value, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean behind the value, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an in-range integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an in-range non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` for non-objects or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Short description of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A JSON number: non-negative integer, negative integer, or float — the
/// same three-way split real serde_json uses, so integer round-trips are
/// exact and floats survive via shortest-round-trip decimal printing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float (always finite; non-finite values serialize as `null`).
    Float(f64),
}

impl Number {
    /// The number as `i64`, if integral and in range.
    #[must_use]
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(_) => None,
        }
    }

    /// The number as `u64`, if integral and non-negative.
    #[must_use]
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }

    /// The number as `f64` (integers convert losslessly up to 2⁵³).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        }
    }
}

/// An insertion-ordered string-keyed map (the object representation).
///
/// Backed by a vector: objects in this workspace are tiny (≤ 10 keys), and
/// preserving insertion order keeps serialization byte-deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a key, replacing in place if it already exists (last write
    /// wins, matching serde_json's duplicate-key handling).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.entries.push((key, value)),
        }
    }

    /// Member lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// A (de)serialization error: a human-readable description of the first
/// mismatch between the value tree and the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    #[must_use]
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self(msg.to_string())
    }

    /// Convenience: "expected X, found Y" for a mismatched value.
    #[must_use]
    pub fn expected(what: &str, found: &Value) -> Self {
        Self(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------
// The traits
// ---------------------------------------------------------------------

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
///
/// Implementations must be total: any input tree either produces a valid
/// value of the type or an [`Error`] — never a panic and never a value
/// violating the type's invariants.
pub trait Deserialize: Sized {
    /// Reads a value of `Self` back out of a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not encode a valid `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("boolean", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

macro_rules! impl_signed {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                Value::Number(if v < 0 {
                    Number::NegInt(v)
                } else {
                    Number::PosInt(v as u64)
                })
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", value))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )+};
}
impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::expected("non-negative integer", value))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )+};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::Float(*self))
        } else {
            // Matches serde_json: non-finite floats serialize as null.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        // f64 -> f32 rounds to nearest, which restores the exact f32 that
        // was widened on the serialize side.
        f64::from_value(value).map(|f| f as f32)
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let arr = value
            .as_array()
            .ok_or_else(|| Error::expected("2-element array", value))?;
        if arr.len() != 2 {
            return Err(Error::custom(format!(
                "expected 2-element array, found {} elements",
                arr.len()
            )));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------
// Impl-generation macros (the stand-in for `#[derive]`)
// ---------------------------------------------------------------------

/// Generates [`Serialize`] + [`Deserialize`] for a plain struct with named
/// fields and no extra invariants. Must be invoked in the module defining
/// the struct (the generated code uses a struct literal, so private fields
/// are fine there). Types whose fields have invariants should hand-write
/// `Deserialize` instead.
///
/// ```
/// struct P { x: i64, y: i64 }
/// serde::impl_serde_struct!(P { x, y });
/// use serde::{Deserialize, Serialize};
/// let v = P { x: 1, y: -2 }.to_value();
/// let p = P::from_value(&v).unwrap();
/// assert_eq!((p.x, p.y), (1, -2));
/// ```
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                let mut map = $crate::Map::new();
                $(map.insert(
                    stringify!($field),
                    $crate::Serialize::to_value(&self.$field),
                );)+
                $crate::Value::Object(map)
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(value: &$crate::Value) -> Result<Self, $crate::Error> {
                let map = value.as_object().ok_or_else(|| {
                    $crate::Error::expected(
                        concat!(stringify!($ty), " object"),
                        value,
                    )
                })?;
                Ok($ty {
                    $($field: map
                        .get(stringify!($field))
                        .ok_or_else(|| $crate::Error::custom(concat!(
                            "missing field `",
                            stringify!($field),
                            "` in ",
                            stringify!($ty),
                        )))
                        .and_then($crate::Deserialize::from_value)?,)+
                })
            }
        }
    };
}

/// Generates [`Serialize`] + [`Deserialize`] for a single-field tuple
/// struct, represented transparently as its inner value (matching serde's
/// newtype behavior).
#[macro_export]
macro_rules! impl_serde_newtype {
    ($ty:ident) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Serialize::to_value(&self.0)
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(value: &$crate::Value) -> Result<Self, $crate::Error> {
                $crate::Deserialize::from_value(value).map($ty)
            }
        }
    };
}

/// Generates [`Serialize`] + [`Deserialize`] for a field-less enum,
/// represented as the variant-name string (matching serde's unit-variant
/// behavior).
#[macro_export]
macro_rules! impl_serde_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::String(
                    match self {
                        $($ty::$variant => stringify!($variant),)+
                    }
                    .to_owned(),
                )
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(value: &$crate::Value) -> Result<Self, $crate::Error> {
                match value.as_str() {
                    $(Some(stringify!($variant)) => Ok($ty::$variant),)+
                    Some(other) => Err($crate::Error::custom(format!(
                        concat!("unknown ", stringify!($ty), " variant `{}`"),
                        other
                    ))),
                    None => Err($crate::Error::expected(
                        concat!(stringify!($ty), " variant string"),
                        value,
                    )),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_owned()
        );
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&300u64.to_value()).is_err());
        assert!(u64::from_value(&(-1i64).to_value()).is_err());
        assert!(i8::from_value(&i64::MAX.to_value()).is_err());
    }

    #[test]
    fn float_accepts_integer_encoding() {
        // The printer emits `1` for 1.0; the reader must accept it.
        assert_eq!(
            f64::from_value(&Value::Number(Number::PosInt(1))).unwrap(),
            1.0
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).is_err());
    }

    #[test]
    fn option_null_roundtrip() {
        let some: Option<i64> = Some(4);
        let none: Option<i64> = None;
        assert_eq!(Option::<i64>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<i64>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn pairs_require_two_elements() {
        let v = Value::Array(vec![1i64.to_value()]);
        assert!(<(i64, i64)>::from_value(&v).is_err());
        let ok = (3i64, 4i64).to_value();
        assert_eq!(<(i64, i64)>::from_value(&ok).unwrap(), (3, 4));
    }

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b", 1i64.to_value());
        m.insert("a", 2i64.to_value());
        m.insert("b", 3i64.to_value());
        let keys: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["b", "a"]);
        assert_eq!(m.get("b"), Some(&3i64.to_value()));
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    struct Demo {
        a: i64,
        b: Option<String>,
    }
    crate::impl_serde_struct!(Demo { a, b });

    #[test]
    fn struct_macro_roundtrips_and_rejects_missing_fields() {
        let d = Demo {
            a: 9,
            b: Some("x".into()),
        };
        let v = d.to_value();
        let back = Demo::from_value(&v).unwrap();
        assert_eq!(back.a, 9);
        assert_eq!(back.b.as_deref(), Some("x"));
        let mut m = Map::new();
        m.insert("a", 9i64.to_value());
        assert!(Demo::from_value(&Value::Object(m)).is_err()); // missing b
        assert!(Demo::from_value(&Value::Null).is_err());
    }

    #[derive(Debug, PartialEq)]
    enum Dir {
        Up,
        Down,
    }
    crate::impl_serde_unit_enum!(Dir { Up, Down });

    #[test]
    fn unit_enum_macro_roundtrips_and_rejects_unknown() {
        assert_eq!(Dir::from_value(&Dir::Up.to_value()).unwrap(), Dir::Up);
        assert!(Dir::from_value(&Value::String("Left".into())).is_err());
        assert!(Dir::from_value(&Value::Null).is_err());
    }

    #[derive(Debug, PartialEq)]
    struct Id(u32);
    crate::impl_serde_newtype!(Id);

    #[test]
    fn newtype_macro_is_transparent() {
        assert_eq!(Id(5).to_value(), 5u32.to_value());
        assert_eq!(Id::from_value(&5u32.to_value()).unwrap(), Id(5));
    }
}
