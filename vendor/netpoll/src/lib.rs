//! Offline stand-in for a readiness-polling crate (mio-style).
//!
//! The build environment has no crates.io access, so the event-loop
//! bindings the serving layer needs are hand-rolled here: on Linux the
//! backend is `epoll` (`epoll_create1`/`epoll_ctl`/`epoll_wait` declared
//! straight against libc, which `std` already links); on other unix
//! platforms it falls back to a `poll(2)` loop over the registered set;
//! on anything else [`Poller::new`] reports `Unsupported` so callers can
//! fall back to a thread-per-connection model at runtime.
//!
//! The surface is deliberately tiny — one [`Poller`] with level-triggered
//! [`register`](Poller::register)/[`reregister`](Poller::reregister)/
//! [`deregister`](Poller::deregister), a blocking [`wait`](Poller::wait),
//! and a [`wake`](Poller::wake) that is safe to call from any thread
//! (eventfd on Linux, a self-pipe elsewhere). Tokens are plain `usize`
//! values chosen by the caller; [`WAKE_TOKEN`] is reserved.
//!
//! ```
//! use netpoll::{Interest, Poller};
//! if let Ok(poller) = Poller::new() {
//!     // Wake from this (or any) thread; wait() returns with no events.
//!     poller.wake().unwrap();
//!     let mut events = Vec::new();
//!     poller.wait(&mut events, Some(std::time::Duration::ZERO)).unwrap();
//!     assert!(events.is_empty());
//!     let _ = Interest::READABLE;
//! }
//! ```

#![warn(missing_docs)]

use std::io;
use std::time::Duration;

/// The raw file-descriptor type the poller registers. Mirrors
/// `std::os::fd::RawFd` on unix; on other platforms the stub backend
/// never dereferences it.
pub type RawFd = i32;

/// Token value reserved for the poller's internal waker; user
/// registrations must not use it (registration refuses it).
pub const WAKE_TOKEN: usize = usize::MAX;

/// What readiness a registration asks for (level-triggered).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Readiness to read.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Readiness to write.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    /// Whether read readiness is requested.
    #[must_use]
    pub fn is_readable(self) -> bool {
        self.readable
    }

    /// Whether write readiness is requested.
    #[must_use]
    pub fn is_writable(self) -> bool {
        self.writable
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the file descriptor was registered under.
    pub token: usize,
    /// Readable now (or the peer closed — read to find out).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// Error or hangup was reported; the owner should read/write to
    /// surface the concrete `io::Error` and drop the connection.
    pub hangup: bool,
}

/// Extracts the raw fd from a TCP stream without the caller needing the
/// unix-only `AsRawFd` trait in scope (on non-unix targets this returns
/// `-1`, matching the stub backend that will never look at it).
#[must_use]
pub fn raw_fd(stream: &std::net::TcpStream) -> RawFd {
    #[cfg(unix)]
    {
        use std::os::fd::AsRawFd;
        stream.as_raw_fd()
    }
    #[cfg(not(unix))]
    {
        let _ = stream;
        -1
    }
}

/// A level-triggered readiness poller with a cross-thread waker. All
/// methods take `&self`; the poller is `Send + Sync` and is meant to be
/// shared (`Arc`) between the owning event loop and the threads that
/// hand it work via [`Poller::wake`].
#[derive(Debug)]
pub struct Poller {
    backend: imp::Backend,
}

impl Poller {
    /// Opens a poller.
    ///
    /// # Errors
    ///
    /// Any OS-level failure creating the backing epoll/pipe objects, or
    /// `Unsupported` on platforms with neither epoll nor poll.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            backend: imp::Backend::new()?,
        })
    }

    /// Starts watching `fd` under `token`.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for the reserved [`WAKE_TOKEN`]; otherwise any
    /// OS-level registration failure (bad fd, duplicate registration).
    pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        if token == WAKE_TOKEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "token usize::MAX is reserved for the waker",
            ));
        }
        self.backend.register(fd, token, interest)
    }

    /// Changes the interest (and/or token) of an already-registered fd.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for the reserved token; OS-level failures otherwise.
    pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        if token == WAKE_TOKEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "token usize::MAX is reserved for the waker",
            ));
        }
        self.backend.reregister(fd, token, interest)
    }

    /// Stops watching `fd`.
    ///
    /// # Errors
    ///
    /// OS-level failure (typically: the fd was not registered).
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.backend.deregister(fd)
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// elapses, or [`Poller::wake`] is called; readiness is appended to
    /// `events` (cleared first). A plain wake-up yields zero events.
    /// `EINTR` is retried internally.
    ///
    /// # Errors
    ///
    /// Any OS-level wait failure.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.backend.wait(events, timeout)
    }

    /// Makes the current (or next) [`Poller::wait`] return immediately.
    /// Callable from any thread; wake-ups are merged, not queued.
    ///
    /// # Errors
    ///
    /// Any OS-level failure writing the wake byte.
    pub fn wake(&self) -> io::Result<()> {
        self.backend.wake()
    }
}

/// Converts an optional timeout to the millisecond argument epoll/poll
/// take (`-1` blocks forever), saturating and rounding up so a 1ns
/// timeout does not busy-spin as 0ms.
#[cfg(unix)]
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => i32::try_from(t.as_millis().max(u128::from(u32::from(!t.is_zero()))))
            .unwrap_or(i32::MAX),
    }
}

#[cfg(target_os = "linux")]
mod imp {
    //! The epoll backend: bindings declared straight against the libc
    //! `std` already links. The waker is an `eventfd` registered under
    //! [`WAKE_TOKEN`](super::WAKE_TOKEN) and drained on every report.

    use super::{timeout_ms, Event, Interest, RawFd, WAKE_TOKEN};
    use std::io;
    use std::time::Duration;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o0004000;

    /// `struct epoll_event` — packed on x86-64, which is why the layout
    /// is spelled out here instead of guessed.
    #[repr(C, packed)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    #[derive(Debug)]
    pub(super) struct Backend {
        epfd: i32,
        wakefd: i32,
    }

    // The fds are used concurrently but every syscall on them is atomic;
    // nothing here needs &mut.
    unsafe impl Send for Backend {}
    unsafe impl Sync for Backend {}

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.is_readable() {
            bits |= EPOLLIN;
        }
        if interest.is_writable() {
            bits |= EPOLLOUT;
        }
        bits
    }

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            // SAFETY: plain fd-creating syscalls; failure is reported
            // through the return value and errno.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let wakefd = match cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
                Ok(fd) => fd,
                Err(e) => {
                    // SAFETY: epfd was just created and is owned here.
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let backend = Backend { epfd, wakefd };
            backend.ctl(EPOLL_CTL_ADD, wakefd, EPOLLIN, WAKE_TOKEN as u64)?;
            Ok(backend)
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
            let mut event = EpollEvent { events, data };
            // SAFETY: `event` outlives the call; epoll_ctl copies it.
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &raw mut event) }).map(drop)
        }

        pub(super) fn register(
            &self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest_bits(interest), token as u64)
        }

        pub(super) fn reregister(
            &self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest_bits(interest), token as u64)
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut buf: [EpollEvent; 256] =
                std::array::from_fn(|_| EpollEvent { events: 0, data: 0 });
            let n = loop {
                // SAFETY: `buf` is a valid writable array of 256 events.
                let ret = unsafe {
                    epoll_wait(
                        self.epfd,
                        buf.as_mut_ptr(),
                        buf.len() as i32,
                        timeout_ms(timeout),
                    )
                };
                match cvt(ret) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for event in &buf[..n] {
                let (bits, data) = (event.events, event.data);
                if data == WAKE_TOKEN as u64 {
                    // Drain the eventfd so level-triggering stops firing;
                    // merged wake-ups read back as one counter value.
                    let mut scratch = [0u8; 8];
                    // SAFETY: reading 8 bytes into an 8-byte buffer from
                    // an fd this struct owns.
                    unsafe { read(self.wakefd, scratch.as_mut_ptr(), scratch.len()) };
                    continue;
                }
                out.push(Event {
                    token: data as usize,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }

        pub(super) fn wake(&self) -> io::Result<()> {
            let one = 1u64.to_ne_bytes();
            // SAFETY: writing 8 owned bytes to an owned eventfd. A full
            // counter (EAGAIN) means a wake-up is already pending, which
            // is exactly the merged semantics wake() promises.
            let ret = unsafe { write(self.wakefd, one.as_ptr(), one.len()) };
            if ret < 0 {
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::WouldBlock {
                    return Err(e);
                }
            }
            Ok(())
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            // SAFETY: both fds are owned by this struct and closed once.
            unsafe {
                close(self.wakefd);
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    //! The portable-unix backend: a registration table rebuilt into a
    //! `pollfd` array on every wait. The waker is a self-pipe whose read
    //! end is part of every poll set.

    use super::{timeout_ms, Event, Interest, RawFd, WAKE_TOKEN};
    use std::collections::HashMap;
    use std::io;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const F_SETFL: i32 = 4;
    const O_NONBLOCK: i32 = 0o0004000;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    #[derive(Debug)]
    pub(super) struct Backend {
        registered: Mutex<HashMap<RawFd, (usize, Interest)>>,
        pipe_read: i32,
        pipe_write: i32,
    }

    unsafe impl Send for Backend {}
    unsafe impl Sync for Backend {}

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            let mut fds = [0i32; 2];
            // SAFETY: `fds` is a valid 2-slot array for pipe() to fill.
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                // SAFETY: setting O_NONBLOCK on a pipe fd owned here.
                if unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) } < 0 {
                    let e = io::Error::last_os_error();
                    // SAFETY: both pipe fds are owned and not yet shared.
                    unsafe {
                        close(fds[0]);
                        close(fds[1]);
                    }
                    return Err(e);
                }
            }
            Ok(Backend {
                registered: Mutex::new(HashMap::new()),
                pipe_read: fds[0],
                pipe_write: fds[1],
            })
        }

        fn table(&self) -> std::sync::MutexGuard<'_, HashMap<RawFd, (usize, Interest)>> {
            self.registered
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        pub(super) fn register(
            &self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            if self.table().insert(fd, (token, interest)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            Ok(())
        }

        pub(super) fn reregister(
            &self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            match self.table().get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            match self.table().remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut fds: Vec<PollFd> = vec![PollFd {
                fd: self.pipe_read,
                events: POLLIN,
                revents: 0,
            }];
            let tokens: Vec<usize> = {
                let table = self.table();
                let mut tokens = Vec::with_capacity(table.len());
                for (&fd, &(token, interest)) in table.iter() {
                    let mut events = 0i16;
                    if interest.is_readable() {
                        events |= POLLIN;
                    }
                    if interest.is_writable() {
                        events |= POLLOUT;
                    }
                    fds.push(PollFd {
                        fd,
                        events,
                        revents: 0,
                    });
                    tokens.push(token);
                }
                tokens
            };
            loop {
                // SAFETY: `fds` is a valid array of fds.len() pollfds.
                let ret = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
                if ret >= 0 {
                    break;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            }
            if fds[0].revents & POLLIN != 0 {
                let mut scratch = [0u8; 64];
                // SAFETY: draining an owned nonblocking pipe into a
                // stack buffer; looping until empty merges wake-ups.
                while unsafe { read(self.pipe_read, scratch.as_mut_ptr(), scratch.len()) }
                    == scratch.len() as isize
                {}
            }
            for (slot, &token) in fds[1..].iter().zip(&tokens) {
                let bits = slot.revents;
                if bits == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: bits & (POLLIN | POLLHUP) != 0,
                    writable: bits & POLLOUT != 0,
                    hangup: bits & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }

        pub(super) fn wake(&self) -> io::Result<()> {
            // SAFETY: one byte into an owned nonblocking pipe; a full
            // pipe already has a wake-up pending (merged semantics).
            let ret = unsafe { write(self.pipe_write, [1u8].as_ptr(), 1) };
            if ret < 0 {
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::WouldBlock {
                    return Err(e);
                }
            }
            Ok(())
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            // SAFETY: both pipe ends are owned and closed exactly once.
            unsafe {
                close(self.pipe_read);
                close(self.pipe_write);
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    //! The stub backend: [`Backend::new`] fails with `Unsupported`, so
    //! callers (the sharded server) fall back to thread-per-connection.

    use super::{Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    #[derive(Debug)]
    pub(super) struct Backend {}

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "netpoll has no backend for this platform",
            ))
        }

        pub(super) fn register(&self, _: RawFd, _: usize, _: Interest) -> io::Result<()> {
            unreachable!("stub backend cannot be constructed")
        }

        pub(super) fn reregister(&self, _: RawFd, _: usize, _: Interest) -> io::Result<()> {
            unreachable!("stub backend cannot be constructed")
        }

        pub(super) fn deregister(&self, _: RawFd) -> io::Result<()> {
            unreachable!("stub backend cannot be constructed")
        }

        pub(super) fn wait(&self, _: &mut Vec<Event>, _: Option<Duration>) -> io::Result<()> {
            unreachable!("stub backend cannot be constructed")
        }

        pub(super) fn wake(&self) -> io::Result<()> {
            unreachable!("stub backend cannot be constructed")
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn reports_read_readiness_when_data_arrives() {
        let poller = Poller::new().unwrap();
        let (mut client, server) = pair();
        server.set_nonblocking(true).unwrap();
        poller
            .register(raw_fd(&server), 7, Interest::READABLE)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "no data yet: {events:?}");
        client.write_all(b"ping\n").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        let mut buf = [0u8; 16];
        let n = { &server }.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping\n");
        poller.deregister(raw_fd(&server)).unwrap();
    }

    #[test]
    fn write_interest_fires_and_can_be_dropped() {
        let poller = Poller::new().unwrap();
        let (_client, server) = pair();
        server.set_nonblocking(true).unwrap();
        poller.register(raw_fd(&server), 3, Interest::BOTH).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 3 && e.writable),
            "a fresh socket has send-buffer room: {events:?}"
        );
        // Drop write interest: a quiet socket now reports nothing.
        poller
            .reregister(raw_fd(&server), 3, Interest::READABLE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn wake_crosses_threads_and_merges() {
        let poller = Arc::new(Poller::new().unwrap());
        let waker = Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            for _ in 0..5 {
                waker.wake().unwrap();
            }
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.is_empty(), "wake-ups carry no events: {events:?}");
        handle.join().unwrap();
        // All five wake-ups were drained together; the next wait times out.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn hangup_is_reported() {
        let poller = Poller::new().unwrap();
        let (client, server) = pair();
        server.set_nonblocking(true).unwrap();
        poller
            .register(raw_fd(&server), 9, Interest::READABLE)
            .unwrap();
        drop(client);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(
            events[0].readable,
            "a closed peer must surface as readable (read returns 0): {events:?}"
        );
    }

    #[test]
    fn wake_token_is_reserved() {
        let poller = Poller::new().unwrap();
        let (_client, server) = pair();
        let err = poller
            .register(raw_fd(&server), WAKE_TOKEN, Interest::READABLE)
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
