//! Integration check: the benchmark suite reproduces the paper's Table 1
//! exactly, through the public umbrella API.

use analog_mps::netlist::benchmarks;

#[test]
fn table1_rows_match_the_paper() {
    let expected: [(&str, usize, usize, usize); 9] = [
        ("circ01", 4, 4, 12),
        ("circ02", 6, 4, 18),
        ("circ06", 6, 4, 18),
        ("TwoStage Opamp", 5, 9, 22),
        ("SingleEnded Opamp", 9, 14, 32),
        ("Mixer", 8, 6, 15),
        ("circ08", 8, 8, 24),
        ("tso-cascode", 21, 36, 46),
        ("benchmark24", 24, 48, 48),
    ];
    let rows = benchmarks::table1();
    assert_eq!(rows.len(), expected.len(), "nine benchmark circuits");
    for ((name, blocks, nets, terminals), row) in expected.iter().zip(&rows) {
        assert_eq!(&row.name, name);
        assert_eq!(row.blocks, *blocks, "{name}: blocks");
        assert_eq!(row.nets, *nets, "{name}: nets");
        assert_eq!(row.terminals, *terminals, "{name}: terminals");
    }
}

#[test]
fn every_benchmark_has_a_complete_sizing_model() {
    for bm in benchmarks::all() {
        assert_eq!(
            bm.model.block_count(),
            bm.circuit.block_count(),
            "{}",
            bm.name
        );
        bm.circuit.validate().expect("benchmark circuits validate");
        // Every block is reachable from some net (no floating modules in
        // the cost function except via area).
        let connected = (0..bm.circuit.block_count())
            .filter(|&i| !bm.circuit.nets_of_block(i.into()).is_empty())
            .count();
        assert!(
            connected * 2 >= bm.circuit.block_count(),
            "{}: too many floating blocks",
            bm.name
        );
    }
}
