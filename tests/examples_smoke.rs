//! Workspace smoke test: every shipped example must build and run to
//! completion. Budgets are scaled down via `MPS_EXAMPLE_EFFORT` so the
//! whole sweep stays in CI territory — the point is exercising each
//! example's full code path (generation, instantiation, reporting), not
//! its full annealing budget.

use std::process::Command;

fn run_example(name: &str) {
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .args(["run", "-q", "-p", "analog-mps", "--example", name])
        .current_dir(manifest_dir)
        .env("MPS_EXAMPLE_EFFORT", "0.05")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} failed with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn opamp_floorplans_runs() {
    run_example("opamp_floorplans");
}

#[test]
fn custom_circuit_runs() {
    run_example("custom_circuit");
}

#[test]
fn serve_queries_runs() {
    run_example("serve_queries");
}

#[test]
fn synthesis_loop_runs() {
    run_example("synthesis_loop");
}

#[test]
fn workspace_runs() {
    run_example("workspace");
}
