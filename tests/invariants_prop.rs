//! Property-based tests of the workspace-wide invariants (DESIGN.md §6).

use analog_mps::geom::{Coord, Interval, IntervalMap, Point};
use analog_mps::mps::{GeneratorConfig, MpsGenerator};
use analog_mps::netlist::benchmarks::random_circuit;
use analog_mps::placer::{Placement, SequencePair, Template};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------
// Invariant 2: interval rows stay sorted, non-overlapping and consistent
// with a naive point-wise model under arbitrary insert/remove sequences.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum RowOp {
    Insert(Coord, Coord, u32),
    Remove(Coord, Coord, u32),
}

fn row_op() -> impl Strategy<Value = RowOp> {
    (0i64..80, 0i64..40, 0u32..6, prop::bool::ANY).prop_map(|(lo, len, id, add)| {
        if add {
            RowOp::Insert(lo, lo + len, id)
        } else {
            RowOp::Remove(lo, lo + len, id)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interval_rows_match_naive_model(ops in prop::collection::vec(row_op(), 1..60)) {
        let mut row: IntervalMap<u32> = IntervalMap::new();
        for op in &ops {
            match *op {
                RowOp::Insert(lo, hi, id) => row.insert(Interval::new(lo, hi), id),
                RowOp::Remove(lo, hi, id) => row.remove(Interval::new(lo, hi), id),
            }
            row.check_invariants().unwrap();
        }
        // Point-wise cross-check against a naive set model.
        for v in -2..130 {
            let mut expect: Vec<u32> = Vec::new();
            for op in &ops {
                match *op {
                    RowOp::Insert(lo, hi, id) if lo <= v && v <= hi && !expect.contains(&id) => {
                        expect.push(id);
                    }
                    RowOp::Remove(lo, hi, id) if lo <= v && v <= hi => {
                        expect.retain(|&e| e != id);
                    }
                    _ => {}
                }
            }
            expect.sort_unstable();
            prop_assert_eq!(row.query(v), expect.as_slice());
        }
    }

    // -------------------------------------------------------------------
    // Invariant 7: sequence-pair packing is legal for arbitrary pairs and
    // dimensions, and extraction→packing stays legal.
    // -------------------------------------------------------------------

    #[test]
    fn sequence_pair_packing_is_legal(
        seed in 0u64..1_000,
        n in 1usize..18,
        dims in prop::collection::vec((1i64..60, 1i64..60), 18),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sp = SequencePair::random(n, &mut rng);
        let dims = &dims[..n];
        let p = sp.pack(dims);
        prop_assert!(p.is_legal(dims, None));
        // Bounding box hugs the origin.
        let bb = p.bounding_box(dims).expect("non-empty");
        prop_assert_eq!(bb.origin(), Point::origin());
        // Extraction round-trip stays legal.
        let extracted = SequencePair::from_placement(&p, dims);
        prop_assert!(extracted.pack(dims).is_legal(dims, None));
    }

    // -------------------------------------------------------------------
    // Invariant 4 on templates: a template instantiation is legal for any
    // dimension vector.
    // -------------------------------------------------------------------

    #[test]
    fn template_instantiation_always_legal(
        seed in 0u64..200,
        scale_w in 1i64..5,
        scale_h in 1i64..5,
    ) {
        let circuit = random_circuit(6, 8, seed);
        let template = Template::expert_default(&circuit, 2);
        let dims: Vec<(Coord, Coord)> = circuit
            .blocks()
            .iter()
            .map(|b| {
                (
                    (b.min_width() * scale_w).min(b.max_width()),
                    (b.min_height() * scale_h).min(b.max_height()),
                )
            })
            .collect();
        let p = template.instantiate(&dims);
        prop_assert!(p.is_legal(&dims, None));
    }
}

// ---------------------------------------------------------------------
// Invariants 1–4 on generated structures over random circuits: Eq.-5
// uniqueness, disjointness, legality. Smaller case count — each case runs
// a full (tiny) generation.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_structures_hold_all_invariants(
        seed in 0u64..10_000,
        blocks in 2usize..7,
        nets in 2usize..8,
    ) {
        let circuit = random_circuit(blocks, nets, seed);
        let config = GeneratorConfig::builder()
            .outer_iterations(25)
            .inner_iterations(25)
            .seed(seed ^ 0xF00D)
            .build();
        let mps = MpsGenerator::new(&circuit, config)
            .generate()
            .expect("random circuits validate");
        mps.check_invariants().map_err(TestCaseError::fail)?;

        // Eq. 5 per query: the owner covers the query point.
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let dims = analog_mps_random_dims(&circuit, &mut rng);
            if let Some(id) = mps.query(&dims) {
                let entry = mps.entry(id).expect("live id");
                prop_assert!(entry.covers(&dims));
                let p = mps.instantiate(&dims).expect("entry exists");
                prop_assert!(p.is_legal(&dims, Some(&mps.floorplan())));
            }
        }
    }
}

fn analog_mps_random_dims(
    circuit: &analog_mps::netlist::Circuit,
    rng: &mut StdRng,
) -> analog_mps::Dims {
    use rand::Rng;
    circuit
        .dim_bounds()
        .iter()
        .map(|b| {
            (
                rng.random_range(b.w.lo()..=b.w.hi()),
                rng.random_range(b.h.lo()..=b.h.hi()),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Anchoring property: shrinking dimensions never makes a legal placement
// illegal (the property instantiate() relies on).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shrinking_dims_preserves_legality(
        seed in 0u64..1_000,
        n in 2usize..10,
        dims in prop::collection::vec((2i64..50, 2i64..50), 10),
        shrink in prop::collection::vec((0.1f64..=1.0, 0.1f64..=1.0), 10),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sp = SequencePair::random(n, &mut rng);
        let dims = &dims[..n];
        let placement: Placement = sp.pack(dims);
        prop_assert!(placement.is_legal(dims, None));
        let smaller: Vec<(Coord, Coord)> = dims
            .iter()
            .zip(&shrink[..n])
            .map(|(&(w, h), &(fw, fh))| {
                (((w as f64 * fw).ceil() as Coord).max(1), ((h as f64 * fh).ceil() as Coord).max(1))
            })
            .collect();
        prop_assert!(placement.is_legal(&smaller, None));
    }
}
