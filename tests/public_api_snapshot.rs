//! Public-API snapshot guard for the deprecation window.
//!
//! The API redesign kept every raw-slice entry point alive as a
//! `#[deprecated]` `*_pairs` shim so downstream migrations stay
//! mechanical for one release. This test pins that surface: each shim
//! must still exist (with its `#[deprecated]` marker), and each typed
//! replacement must exist next to it. Removing a shim without recording
//! the break in `CHANGES.md` fails the suite — the note is the
//! changelog entry downstream users grep for.

use std::path::Path;

/// (source file, deprecated shim, typed replacement) — the full shim
/// surface of the redesign.
const SHIMS: &[(&str, &str, &str)] = &[
    ("crates/core/src/structure.rs", "fn query_pairs", "fn query"),
    (
        "crates/core/src/structure.rs",
        "fn query_with_scratch_pairs",
        "fn query_with_scratch",
    ),
    (
        "crates/core/src/structure.rs",
        "fn query_batch_pairs",
        "fn query_batch",
    ),
    (
        "crates/core/src/structure.rs",
        "fn instantiate_pairs",
        "fn instantiate",
    ),
    (
        "crates/core/src/structure.rs",
        "fn instantiate_or_fallback_pairs",
        "fn instantiate_or_fallback",
    ),
    (
        "crates/core/src/structure.rs",
        "fn instantiate_compacted_pairs",
        "fn instantiate_compacted",
    ),
    (
        "crates/core/src/structure.rs",
        "fn instantiate_compacted_or_fallback_pairs",
        "fn instantiate_compacted_or_fallback",
    ),
    ("crates/serve/src/compiled.rs", "fn query_pairs", "fn query"),
    (
        "crates/serve/src/compiled.rs",
        "fn query_with_scratch_pairs",
        "fn query_with_scratch",
    ),
];

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn deprecated_shims_stay_until_changes_md_notes_their_removal() {
    let changes = std::fs::read_to_string(repo_root().join("CHANGES.md")).expect("CHANGES.md");
    for &(file, shim, _) in SHIMS {
        let source = std::fs::read_to_string(repo_root().join(file))
            .unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
        let shim_name = shim.strip_prefix("fn ").unwrap();
        if let Some(at) = source.find(&format!("pub {shim}(")) {
            // Present: it must still carry its deprecation marker (the
            // preceding 600 bytes cover the attribute + doc comment).
            let before = &source[at.saturating_sub(600)..at];
            assert!(
                before.contains("#[deprecated"),
                "{file}: `{shim_name}` exists but lost its #[deprecated] marker"
            );
        } else {
            // Removed: legal only once CHANGES.md records the break.
            assert!(
                changes.contains(shim_name),
                "{file}: deprecated shim `{shim_name}` was removed without a \
                 CHANGES.md note — record the breaking change (or restore the shim)"
            );
        }
    }
}

#[test]
fn typed_replacements_exist() {
    for &(file, _, replacement) in SHIMS {
        let source = std::fs::read_to_string(repo_root().join(file))
            .unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
        assert!(
            source.contains(&format!("pub {replacement}(")),
            "{file}: typed replacement `{replacement}` is missing"
        );
    }
}

/// The facade types the README/migration table promise must stay
/// exported from the umbrella crate root & api module.
#[test]
fn facade_surface_is_exported() {
    let lib = std::fs::read_to_string(repo_root().join("src/lib.rs")).unwrap();
    for needle in [
        "pub mod api",
        "pub use mps_geom::{dims, Coord, Dims, DimsError}",
    ] {
        assert!(lib.contains(needle), "src/lib.rs lost `{needle}`");
    }
    let api = std::fs::read_to_string(repo_root().join("src/api/mod.rs")).unwrap();
    for needle in ["MpsError", "QueryError", "Workspace", "StructureHandle"] {
        assert!(api.contains(needle), "src/api/mod.rs lost `{needle}`");
    }
}
