//! Format-stability and rejection tests for the `mps-v1` persistence
//! envelope.
//!
//! The committed golden fixture (`tests/fixtures/circ02_mps.json`) pins
//! the on-disk format: if a change to the serializers alters what the
//! bytes mean, these tests fail in CI instead of silently orphaning every
//! structure users have saved. The malformed-input battery asserts the
//! validate-don't-trust contract of the loader: bad input of any kind is
//! a typed `Err`, never a panic and never a quietly corrupt structure.
#![cfg(feature = "serde")]

use analog_mps::mps::{
    GeneratorConfig, MpsGenerator, MultiPlacementStructure, PersistError, PlacementId,
};
use analog_mps::netlist::benchmarks;

const FIXTURE: &str = include_str!("fixtures/circ02_mps.json");

/// The generation recipe behind the committed fixture. Kept callable so
/// `regenerate_golden_fixture` (ignored) can rewrite the file after an
/// *intentional* format bump.
fn fixture_structure() -> MultiPlacementStructure {
    let bm = benchmarks::by_name("circ02").unwrap();
    let config = GeneratorConfig::builder()
        .outer_iterations(60)
        .inner_iterations(40)
        .seed(20050307)
        .build();
    MpsGenerator::new(&bm.circuit, config).generate().unwrap()
}

/// One fixed probe and its hard-coded expected answer.
type Probe = (analog_mps::Dims, Option<PlacementId>);

/// A fixed probe battery over the fixture's dimension space. The expected
/// answers are hard-coded: they may only change together with a format
/// version bump and a regenerated fixture.
fn fixed_probes() -> Vec<Probe> {
    let bm = benchmarks::by_name("circ02").unwrap();
    let min = bm.circuit.min_dims();
    let max = bm.circuit.max_dims();
    let mid: analog_mps::Dims = bm
        .circuit
        .dim_bounds()
        .iter()
        .map(|b| (b.w.midpoint(), b.h.midpoint()))
        .collect();
    vec![
        (min, EXPECTED_AT_MIN.map(PlacementId)),
        (mid, EXPECTED_AT_MID.map(PlacementId)),
        (max, EXPECTED_AT_MAX.map(PlacementId)),
    ]
}

// Hard-coded expected answers for the committed fixture (see
// `regenerate_golden_fixture` for how to refresh them intentionally).
const EXPECTED_AT_MIN: Option<u32> = None;
const EXPECTED_AT_MID: Option<u32> = Some(13);
const EXPECTED_AT_MAX: Option<u32> = None;
const EXPECTED_PLACEMENTS: usize = 23;

#[test]
fn golden_fixture_loads_and_answers_fixed_queries() {
    let mps = MultiPlacementStructure::from_json(FIXTURE).expect("fixture loads");
    assert_eq!(mps.placement_count(), EXPECTED_PLACEMENTS);
    for (dims, expected) in fixed_probes() {
        assert_eq!(mps.query(&dims), expected, "probe {dims:?}");
    }
}

#[test]
fn golden_fixture_reserializes_byte_identically() {
    let mps = MultiPlacementStructure::from_json(FIXTURE).expect("fixture loads");
    assert_eq!(
        mps.to_json_pretty(),
        FIXTURE,
        "load → save must reproduce the committed fixture byte-for-byte; \
         if this change is an intentional format bump, bump `FORMAT` and \
         regenerate via `cargo test -- --ignored regenerate_golden_fixture`"
    );
}

#[test]
fn generation_recipe_still_matches_fixture() {
    // The fixture is not hand-written: the committed bytes must be what
    // the current generator produces for the recorded recipe. This pins
    // serializer *and* generator determinism at once.
    assert_eq!(fixture_structure().to_json_pretty(), FIXTURE);
}

/// Rewrites the committed fixture. Run explicitly after an intentional
/// format change: `cargo test -- --ignored regenerate_golden_fixture`,
/// then update the hard-coded expectations above.
#[test]
#[ignore = "writes tests/fixtures/circ02_mps.json; run only for an intentional format bump"]
fn regenerate_golden_fixture() {
    let mps = fixture_structure();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/circ02_mps.json"
    );
    std::fs::write(path, mps.to_json_pretty()).expect("write fixture");
    println!("placements: {}", mps.placement_count());
    for (dims, _) in fixed_probes() {
        println!("query {dims:?} -> {:?}", mps.query(&dims));
    }
}

// ---------------------------------------------------------------------
// Malformed-input battery
// ---------------------------------------------------------------------

#[test]
fn truncated_json_errors_cleanly() {
    for cut in [
        0,
        1,
        10,
        FIXTURE.len() / 3,
        FIXTURE.len() / 2,
        FIXTURE.len() - 2,
    ] {
        let truncated = &FIXTURE[..cut];
        assert!(
            matches!(
                MultiPlacementStructure::from_json(truncated),
                Err(PersistError::Decode(_) | PersistError::Envelope(_))
            ),
            "truncation at byte {cut} must yield a decode error"
        );
    }
}

#[test]
fn wrong_format_version_is_rejected() {
    let bumped = FIXTURE.replace("\"mps-v1\"", "\"mps-v2\"");
    match MultiPlacementStructure::from_json(&bumped) {
        Err(PersistError::WrongFormat { found }) => assert_eq!(found, "mps-v2"),
        other => panic!("expected WrongFormat, got {other:?}"),
    }
    assert!(matches!(
        MultiPlacementStructure::from_json("{\"structure\": {}}"),
        Err(PersistError::Envelope(_))
    ));
}

#[test]
fn structural_corruption_is_rejected_not_panicked() {
    // Field-level surgery on the (valid) fixture text. Every mutant must
    // come back as Err — none may panic, none may load.
    type Mutation = (&'static str, Box<dyn Fn(&str) -> String>);
    let mutations: Vec<Mutation> = vec![
        (
            "inverted interval",
            Box::new(|s: &str| s.replacen("\"lo\": 18", "\"lo\": 999999", 1)),
        ),
        (
            "negative floorplan extent",
            Box::new(|s: &str| s.replacen("\"w\": 231", "\"w\": -231", 1)),
        ),
        (
            "missing member",
            Box::new(|s: &str| s.replacen("\"w_rows\"", "\"w_rows_gone\"", 1)),
        ),
        (
            "bad member type",
            Box::new(|s: &str| s.replacen("\"entries\": [", "\"entries\": 3, \"x\": [", 1)),
        ),
    ];
    for (label, mutate) in mutations {
        let mutant = mutate(FIXTURE);
        assert_ne!(mutant, FIXTURE, "mutation `{label}` must change the text");
        assert!(
            MultiPlacementStructure::from_json(&mutant).is_err(),
            "mutation `{label}` must be rejected"
        );
    }
}

#[test]
fn eq5_violating_input_is_rejected() {
    // Duplicate an existing live entry inside the envelope's entry list:
    // its validity box then overlaps its twin's, violating Eq. 5
    // (|M(V)| = 1). The loader must refuse even though every individual
    // field is well-formed.
    let value = serde_json::parse(FIXTURE).unwrap();
    let structure = value.get("structure").unwrap();
    let entries = structure.get("entries").unwrap().as_array().unwrap();
    let first_live = entries
        .iter()
        .find(|e| !matches!(e, serde_json::Value::Null))
        .expect("fixture has live entries");

    let mut new_entries = entries.clone();
    new_entries.push(first_live.clone());

    let mut new_structure = serde_json::Map::new();
    for (k, v) in structure.as_object().unwrap().iter() {
        if k == "entries" {
            new_structure.insert(k, serde_json::Value::Array(new_entries.clone()));
        } else {
            new_structure.insert(k, v.clone());
        }
    }
    let mut envelope = serde_json::Map::new();
    envelope.insert("format", serde_json::Value::String("mps-v1".to_owned()));
    envelope.insert("structure", serde_json::Value::Object(new_structure));
    let json = serde_json::to_string(&serde_json::Value::Object(envelope)).unwrap();

    match MultiPlacementStructure::from_json(&json) {
        // The duplicated entry is not registered in the rows, so either
        // the row-consistency or the box-disjointness invariant fires —
        // both are Invariant-class rejections.
        Err(PersistError::Invariant(_)) => {}
        other => panic!("expected Invariant error, got {other:?}"),
    }
}

#[test]
fn wrong_arity_entries_are_rejected() {
    // Probing a loaded structure with the wrong dimension arity must not
    // be constructible from disk: shrink the bounds list by one block so
    // it disagrees with every entry's box.
    let value = serde_json::parse(FIXTURE).unwrap();
    let structure = value.get("structure").unwrap();
    let bounds = structure.get("bounds").unwrap().as_array().unwrap();
    let mut short_bounds = bounds.clone();
    short_bounds.pop();

    let mut new_structure = serde_json::Map::new();
    for (k, v) in structure.as_object().unwrap().iter() {
        if k == "bounds" {
            new_structure.insert(k, serde_json::Value::Array(short_bounds.clone()));
        } else {
            new_structure.insert(k, v.clone());
        }
    }
    let mut envelope = serde_json::Map::new();
    envelope.insert("format", serde_json::Value::String("mps-v1".to_owned()));
    envelope.insert("structure", serde_json::Value::Object(new_structure));
    let json = serde_json::to_string(&serde_json::Value::Object(envelope)).unwrap();
    assert!(MultiPlacementStructure::from_json(&json).is_err());
}
