//! Concurrent-serving e2e: N client threads hammer a real TCP server
//! (pipelined tagged requests, single + batch queries) while a writer
//! thread hot-reloads the registry mid-stream — every answer, cached or
//! not, is diffed against a direct [`Workspace::query`] on the same
//! artifact. Zero divergence is tolerated: the sharded answer cache and
//! the all-or-nothing reload invalidation must be invisible in the
//! answers, visible only in the counters.
#![cfg(feature = "serde")]

use analog_mps::api::{ServerConfig, Workspace};
use analog_mps::mps::GeneratorConfig;
use analog_mps::netlist::benchmarks;
use analog_mps::Dims;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 200;
const PIPELINE_DEPTH: usize = 4;

/// What the direct query path says the tagged request must answer.
enum Expect {
    Query(Option<u64>),
    Batch(Vec<Option<u64>>),
}

fn dims_json(dims: &Dims) -> String {
    let pairs: Vec<String> = dims.iter().map(|&(w, h)| format!("[{w},{h}]")).collect();
    format!("[{}]", pairs.join(","))
}

#[test]
fn concurrent_clients_with_hot_reload_never_diverge() {
    let dir = std::env::temp_dir().join(format!("mps_serve_conc_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut ws = Workspace::open(&dir).unwrap();
    let circuit = benchmarks::circ01();
    let config = GeneratorConfig::builder()
        .outer_iterations(40)
        .inner_iterations(30)
        .seed(0xC0)
        .build();
    ws.generate_or_load("circ01", &circuit, config).unwrap();

    let server = Arc::new(
        ws.serve_server(ServerConfig {
            workers: 3,
            cache_entries: 512,
            cache_shards: 4,
            ..ServerConfig::default()
        })
        .unwrap(),
    );
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    {
        let server = Arc::clone(&server);
        // Detached accept loop; the test process ends it on exit.
        std::thread::spawn(move || server.serve_tcp(listener));
    }

    // A shared hot set so the cache sees repetition between reloads.
    let bounds = circuit.dim_bounds();
    let mut rng = StdRng::seed_from_u64(0x407);
    let hot: Vec<Dims> = (0..16)
        .map(|_| {
            bounds
                .iter()
                .map(|b| {
                    (
                        rng.random_range(b.w.lo()..=b.w.hi()),
                        rng.random_range(b.h.lo()..=b.h.hi()),
                    )
                })
                .collect()
        })
        .collect();

    let stop = AtomicBool::new(false);
    let reloads = AtomicU64::new(0);
    let divergences = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // The churn writer: hot-reloads the registry over the wire while
        // the clients are mid-stream. The artifact bytes are unchanged,
        // so the direct-query reference stays valid across every swap —
        // what the reload exercises is the snapshot swap and the
        // all-or-nothing cache invalidation under fire.
        scope.spawn(|| {
            let stream = TcpStream::connect(addr).unwrap();
            let _ = stream.set_nodelay(true);
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            while !stop.load(Ordering::Relaxed) {
                writeln!(writer, r#"{{"kind":"reload"}}"#).unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                let value: Value = serde_json::parse(line.trim_end()).unwrap();
                assert_eq!(
                    value.get("ok").and_then(Value::as_bool),
                    Some(true),
                    "reload refused mid-stream: {line}"
                );
                reloads.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });

        for client in 0..CLIENTS {
            let (ws, hot, divergences, bounds) = (&ws, &hot, &divergences, &bounds);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC11E57 + client as u64);
                let stream = TcpStream::connect(addr).unwrap();
                let _ = stream.set_nodelay(true);
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut expectations: Vec<Option<Expect>> = Vec::new();
                let mut outstanding = 0usize;
                let mut answered = 0usize;

                let mut read_one = |expectations: &mut Vec<Option<Expect>>| {
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    let value: Value =
                        serde_json::parse(line.trim_end()).expect("response is JSON");
                    assert_eq!(
                        value.get("ok").and_then(Value::as_bool),
                        Some(true),
                        "client {client} refused: {line}"
                    );
                    let req = value.get("req").and_then(Value::as_u64).expect("tagged") as usize;
                    let expect = expectations[req].take().expect("one response per id");
                    let matches = match expect {
                        Expect::Query(want) => value.get("id").and_then(Value::as_u64) == want,
                        Expect::Batch(want) => value
                            .get("ids")
                            .and_then(Value::as_array)
                            .is_some_and(|ids| {
                                ids.len() == want.len()
                                    && ids.iter().zip(&want).all(|(got, w)| got.as_u64() == *w)
                            }),
                    };
                    if !matches {
                        divergences.fetch_add(1, Ordering::Relaxed);
                        eprintln!("client {client} req {req} diverges: {line}");
                    }
                };

                for _ in 0..REQUESTS_PER_CLIENT {
                    let id = expectations.len();
                    // 80% hot single queries (cache food), 10% cold
                    // singles, 10% batches over the hot set.
                    let roll: f64 = rng.random_range(0.0..1.0);
                    let line = if roll < 0.1 {
                        let batch: Vec<&Dims> =
                            (0..8).map(|_| &hot[rng.random_range(0..hot.len())]).collect();
                        let want = batch
                            .iter()
                            .map(|d| ws.query("circ01", d).unwrap().map(|id| u64::from(id.0)))
                            .collect();
                        expectations.push(Some(Expect::Batch(want)));
                        let vectors: Vec<String> =
                            batch.iter().map(|d| dims_json(d)).collect();
                        format!(
                            r#"{{"id":{id},"kind":"batch_query","structure":"circ01","dims_list":[{}]}}"#,
                            vectors.join(",")
                        )
                    } else {
                        let dims: Dims = if roll < 0.9 {
                            hot[rng.random_range(0..hot.len())].clone()
                        } else {
                            bounds
                                .iter()
                                .map(|b| {
                                    (
                                        rng.random_range(b.w.lo()..=b.w.hi()),
                                        rng.random_range(b.h.lo()..=b.h.hi()),
                                    )
                                })
                                .collect()
                        };
                        let want = ws.query("circ01", &dims).unwrap().map(|id| u64::from(id.0));
                        expectations.push(Some(Expect::Query(want)));
                        format!(
                            r#"{{"id":{id},"kind":"query","structure":"circ01","dims":{}}}"#,
                            dims_json(&dims)
                        )
                    };
                    writeln!(writer, "{line}").unwrap();
                    outstanding += 1;
                    if outstanding == PIPELINE_DEPTH {
                        read_one(&mut expectations);
                        outstanding -= 1;
                        answered += 1;
                    }
                }
                while outstanding > 0 {
                    read_one(&mut expectations);
                    outstanding -= 1;
                    answered += 1;
                }
                assert_eq!(answered, REQUESTS_PER_CLIENT);
            });
        }

        // Let the clients finish, then stop the churn. The scope joins
        // the client threads for us; the reloader needs the flag —
        // waiting threads are joined at scope end, and the clients all
        // finishing is what gates the flag, so set it from a watcher.
        scope.spawn(|| {
            // Clients run bounded work; poll until only the reloader and
            // this watcher could still be running, using the server's
            // own counters as the progress signal.
            let expected = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
            loop {
                let answered = server_requests_done(addr);
                if answered >= expected {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            stop.store(true, Ordering::Relaxed);
        });
    });

    assert_eq!(
        divergences.load(Ordering::Relaxed),
        0,
        "answers under cache + hot-reload churn must be bit-identical to Workspace::query"
    );
    assert!(
        reloads.load(Ordering::Relaxed) >= 1,
        "the churn writer must have reloaded mid-stream"
    );

    // Counter epilogue over one fresh connection: the cache took hits
    // (the hot set repeats) and the reloads invalidated all-or-nothing.
    let stream = TcpStream::connect(addr).unwrap();
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writeln!(writer, r#"{{"kind":"stats"}}"#).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let stats: Value = serde_json::parse(line.trim_end()).unwrap();
    let cache = stats.get("cache").expect("stats carries cache counters");
    assert!(
        cache
            .get("invalidations")
            .and_then(Value::as_u64)
            .unwrap_or(0)
            >= 1,
        "reloads must invalidate the cache: {line}"
    );
    assert!(
        cache.get("hits").and_then(Value::as_u64).unwrap_or(0) > 0,
        "the hot set must produce cache hits between reloads: {line}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// 256 concurrent clients against the sharded event-loop server — far
/// past where a thread-per-connection design stops being "a few worker
/// threads" and becomes a context-switch storm. Every answer is diffed
/// against a direct [`Workspace::query`]; zero divergence is tolerated.
/// The epilogue checks the open-connection gauge drains back down once
/// the clients hang up (the drop-guard accounting, end to end).
#[test]
fn two_hundred_fifty_six_clients_never_diverge() {
    const STRESS_CLIENTS: usize = 256;
    const STRESS_REQUESTS: usize = 8;

    let dir = std::env::temp_dir().join(format!("mps_serve_stress_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut ws = Workspace::open(&dir).unwrap();
    let circuit = benchmarks::circ01();
    let config = GeneratorConfig::builder()
        .outer_iterations(40)
        .inner_iterations(30)
        .seed(0xC1)
        .build();
    ws.generate_or_load("circ01", &circuit, config).unwrap();

    let server = Arc::new(
        ws.serve_server(ServerConfig {
            workers: 2,
            cache_entries: 1024,
            cache_shards: 4,
            shards: 2,
            ..ServerConfig::default()
        })
        .unwrap(),
    );
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve_tcp(listener));
    }

    // Precompute vectors and expected answers once; the clients share
    // the pool read-only so 256 threads don't each run the reference
    // query path.
    let bounds = circuit.dim_bounds();
    let mut rng = StdRng::seed_from_u64(0x5712E55);
    let pool: Vec<(Dims, Option<u64>)> = (0..64)
        .map(|_| {
            let dims: Dims = bounds
                .iter()
                .map(|b| {
                    (
                        rng.random_range(b.w.lo()..=b.w.hi()),
                        rng.random_range(b.h.lo()..=b.h.hi()),
                    )
                })
                .collect();
            let want = ws.query("circ01", &dims).unwrap().map(|id| u64::from(id.0));
            (dims, want)
        })
        .collect();

    let divergences = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for client in 0..STRESS_CLIENTS {
            let (pool, divergences) = (&pool, &divergences);
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("server must admit 256 clients");
                let _ = stream.set_nodelay(true);
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                // Pipeline the whole burst, then read all responses.
                let mut wants = Vec::with_capacity(STRESS_REQUESTS);
                for id in 0..STRESS_REQUESTS {
                    let (dims, want) = &pool[(client * 7 + id * 13) % pool.len()];
                    wants.push(*want);
                    writeln!(
                        writer,
                        r#"{{"id":{id},"kind":"query","structure":"circ01","dims":{}}}"#,
                        dims_json(dims)
                    )
                    .unwrap();
                }
                let mut seen = [false; STRESS_REQUESTS];
                for _ in 0..STRESS_REQUESTS {
                    let mut line = String::new();
                    assert!(
                        reader.read_line(&mut line).unwrap() > 0,
                        "client {client}: early EOF"
                    );
                    let value: Value =
                        serde_json::parse(line.trim_end()).expect("response is JSON");
                    assert_eq!(
                        value.get("ok").and_then(Value::as_bool),
                        Some(true),
                        "client {client} refused: {line}"
                    );
                    let req = value.get("req").and_then(Value::as_u64).expect("tagged") as usize;
                    assert!(!seen[req], "client {client}: req {req} answered twice");
                    seen[req] = true;
                    if value.get("id").and_then(Value::as_u64) != wants[req] {
                        divergences.fetch_add(1, Ordering::Relaxed);
                        eprintln!("client {client} req {req} diverges: {line}");
                    }
                }
            });
        }
    });
    assert_eq!(
        divergences.load(Ordering::Relaxed),
        0,
        "sharded serving must answer bit-identically to Workspace::query under 256 clients"
    );

    // All clients hung up: the open-connection gauge must drain back to
    // just the stats probe itself — the drop-guard accounting survives
    // 256 concurrent lifecycles.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let open = stats_field(addr, "connections", "open");
        if open <= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "open-connection gauge stuck at {open} after every client closed"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// One stats request over a fresh connection, returning the named
/// nested counter (0 when anything fails — callers poll).
fn stats_field(addr: std::net::SocketAddr, group: &str, name: &str) -> u64 {
    let Ok(stream) = TcpStream::connect(addr) else {
        return 0;
    };
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return 0,
    });
    let mut writer = stream;
    if writeln!(writer, r#"{{"kind":"stats"}}"#).is_err() {
        return 0;
    }
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return 0;
    }
    let Ok(value) = serde_json::parse(line.trim_end()) else {
        return 0;
    };
    value
        .get(group)
        .and_then(|g| g.get(name))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

/// Asks the server (over its own short-lived connection) how many
/// query/batch/instantiate answers it has produced so far.
fn server_requests_done(addr: std::net::SocketAddr) -> u64 {
    let Ok(stream) = TcpStream::connect(addr) else {
        return 0;
    };
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return 0,
    });
    let mut writer = stream;
    if writeln!(writer, r#"{{"kind":"stats"}}"#).is_err() {
        return 0;
    }
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return 0;
    }
    let Ok(value) = serde_json::parse(line.trim_end()) else {
        return 0;
    };
    let counter = |name: &str| {
        value
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    counter("queries") + counter("instantiations")
}
