//! Cross-method integration: the three placement-method classes the paper
//! positions itself between behave as §1 describes.

use analog_mps::mps::{GeneratorConfig, MpsGenerator};
use analog_mps::netlist::benchmarks;
use analog_mps::placer::{CostCalculator, SaPlacer, SaPlacerConfig, Template};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn random_dims(circuit: &analog_mps::netlist::Circuit, rng: &mut StdRng) -> analog_mps::Dims {
    circuit
        .dim_bounds()
        .iter()
        .map(|b| {
            (
                rng.random_range(b.w.lo()..=b.w.hi()),
                rng.random_range(b.h.lo()..=b.h.hi()),
            )
        })
        .collect()
}

/// "Speed is the major advantage of this [template] method" and the MPS
/// must be "comparable to template-based approaches in speed": both
/// instantiate orders of magnitude faster than a per-query SA run.
#[test]
fn instantiation_is_orders_of_magnitude_faster_than_flat_sa() {
    let circuit = benchmarks::two_stage_opamp();
    let mps = MpsGenerator::new(
        &circuit,
        GeneratorConfig::builder()
            .outer_iterations(80)
            .inner_iterations(60)
            .seed(1)
            .build(),
    )
    .generate()
    .unwrap();
    let sa = SaPlacer::new(
        &circuit,
        SaPlacerConfig {
            iterations: 5_000,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(2);
    let queries: Vec<analog_mps::Dims> = (0..20).map(|_| random_dims(&circuit, &mut rng)).collect();

    let t = Instant::now();
    for dims in &queries {
        let p = mps.instantiate_or_fallback(dims);
        assert!(p.is_legal(dims, None));
    }
    let mps_time = t.elapsed();

    let t = Instant::now();
    for (k, dims) in queries.iter().enumerate().take(3) {
        let out = sa.place(dims, k as u64);
        assert!(out.placement.is_legal(dims, None));
    }
    let sa_time = t.elapsed() / 3 * queries.len() as u32;

    assert!(
        sa_time > mps_time * 100,
        "flat SA ({sa_time:?} per {n} queries) should dwarf MPS instantiation ({mps_time:?})",
        n = queries.len()
    );
}

/// The flat SA placer — given real time — finds placements at least as
/// good as the one-shot template at the same sizes (the quality side of
/// the paper's positioning).
#[test]
fn flat_sa_quality_beats_or_matches_template() {
    let circuit = benchmarks::circ02();
    let calc = CostCalculator::new(&circuit);
    let template = Template::expert_default(&circuit, 5);
    let sa = SaPlacer::new(
        &circuit,
        SaPlacerConfig {
            iterations: 15_000,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(9);
    let mut sa_total = 0.0;
    let mut template_total = 0.0;
    for k in 0..5 {
        let dims = random_dims(&circuit, &mut rng);
        sa_total += calc.cost(&sa.place(&dims, k).placement, &dims);
        template_total += calc.cost(&template.instantiate(&dims), &dims);
    }
    assert!(
        sa_total <= template_total * 1.10,
        "SA quality {sa_total:.0} should not lose badly to the fixed template {template_total:.0}"
    );
}

/// The structure's stored placements were optimized per size region, so at
/// each entry's own best dims the selected placement must be competitive
/// with a fresh (budgeted) SA run — the quality claim of Fig. 6 /
/// "optimized placements".
#[test]
fn stored_placements_are_competitive_at_their_best_dims() {
    let circuit = benchmarks::circ01();
    let calc = CostCalculator::new(&circuit);
    let mps = MpsGenerator::new(
        &circuit,
        GeneratorConfig::builder()
            .outer_iterations(200)
            .inner_iterations(120)
            .seed(4)
            .build(),
    )
    .generate()
    .unwrap();
    let sa = SaPlacer::new(
        &circuit,
        SaPlacerConfig {
            iterations: 8_000,
            ..Default::default()
        },
    );
    // Compare aggregate cost over the five best entries.
    let mut entries: Vec<_> = mps.iter().map(|(_, e)| e.clone()).collect();
    entries.sort_by(|a, b| a.best_cost.total_cmp(&b.best_cost));
    let mut mps_total = 0.0;
    let mut sa_total = 0.0;
    for (k, entry) in entries.iter().take(5).enumerate() {
        let dims = &entry.best_dims;
        let selected = mps.instantiate(dims).expect("best dims are covered");
        mps_total += calc.cost(&selected, dims);
        sa_total += calc.cost(&sa.place(dims, 100 + k as u64).placement, dims);
    }
    assert!(
        mps_total <= sa_total * 1.5,
        "stored placements ({mps_total:.0}) should be within 1.5x of fresh SA ({sa_total:.0})"
    );
}
