//! The redesign's acceptance battery: the facade path — `Workspace`
//! handles answering typed `Dims` queries through the compiled plan —
//! must be **bit-identical** to the pre-redesign raw path (the
//! deprecated `*_pairs` shims over bare `&[(Coord, Coord)]` slices), on
//! the committed golden fixture and on ≥ 1,000 random probes per
//! circuit.
//!
//! Three paths are diffed on every probe:
//!
//! 1. `mps.query_pairs(&raw)` — the old raw-tuple entry point (kept as a
//!    deprecated shim for one release);
//! 2. `mps.query(&Dims)` — the typed interpretive path;
//! 3. `ws.query(name, &Dims)` — the full facade (compiled index behind a
//!    `Workspace` handle).
#![cfg(feature = "serde")]
#![allow(deprecated)] // the point of this battery is diffing against the old path

use analog_mps::api::Workspace;
use analog_mps::mps::{GeneratorConfig, MpsGenerator, MultiPlacementStructure};
use analog_mps::netlist::benchmarks;
use analog_mps::{Coord, Dims};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FIXTURE: &str = include_str!("fixtures/circ02_mps.json");

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mps_facade_eq_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A mixed probe stream over (and beyond) the circuit's bounds: uniform
/// in-bounds vectors salted with out-of-bounds values, which every path
/// must answer `None` for.
fn probe_stream(mps: &MultiPlacementStructure, n: usize, seed: u64) -> Vec<Vec<(Coord, Coord)>> {
    let bounds = mps.bounds();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|k| {
            let mut dims: Vec<(Coord, Coord)> = bounds
                .iter()
                .map(|b| {
                    (
                        rng.random_range(b.w.lo()..=b.w.hi()),
                        rng.random_range(b.h.lo()..=b.h.hi()),
                    )
                })
                .collect();
            if k % 11 == 3 {
                let i = k % bounds.len();
                dims[i].0 = bounds[i].w.hi() + 1 + rng.random_range(0..40);
            }
            dims
        })
        .collect()
}

/// Diffs the three paths on `n` probes; panics on the first divergence.
fn assert_facade_matches_raw(name: &str, mps: &MultiPlacementStructure, n: usize, seed: u64) {
    let dir = temp_dir(name);
    std::fs::write(dir.join(format!("{name}.mps.json")), mps.to_json()).unwrap();
    let mut ws = Workspace::open(&dir).unwrap();
    ws.load(name).unwrap();

    let mut covered = 0usize;
    for (k, raw) in probe_stream(mps, n, seed).into_iter().enumerate() {
        let old = mps.query_pairs(&raw);
        let typed = Dims::from_vec_unchecked(raw.clone());
        assert_eq!(
            old,
            mps.query(&typed),
            "probe {k} ({raw:?}): typed path diverges from the raw path"
        );
        assert_eq!(
            old,
            ws.query(name, &typed).unwrap(),
            "probe {k} ({raw:?}): facade path diverges from the raw path"
        );
        covered += usize::from(old.is_some());

        // In-bounds probes also instantiate identically (facade
        // instantiation rejects out-of-bounds with a typed error).
        if typed.within_bounds(mps.bounds()) {
            let old_p = mps.instantiate_or_fallback_pairs(&raw);
            assert_eq!(
                old_p,
                mps.instantiate_or_fallback(&typed),
                "probe {k}: typed instantiation diverges"
            );
            assert_eq!(
                old_p,
                ws.instantiate(name, &typed).unwrap(),
                "probe {k}: facade instantiation diverges"
            );
        }
    }
    assert!(
        covered > 0,
        "probe stream never hit covered space — the battery proves nothing"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The committed golden fixture, diffed on ≥ 1,000 probes: the facade
/// must answer the pinned on-disk format exactly like the raw path.
#[test]
fn facade_matches_raw_on_the_golden_fixture() {
    let mps = MultiPlacementStructure::from_json(FIXTURE).expect("fixture loads");
    assert_facade_matches_raw("circ02", &mps, 1_500, 0xFACADE);
}

/// Freshly generated structures, ≥ 1,000 probes each.
#[test]
fn facade_matches_raw_on_generated_structures() {
    for (name, seed) in [("circ01", 11u64), ("Mixer", 12u64)] {
        let bm = benchmarks::by_name(name).unwrap();
        let config = GeneratorConfig::builder()
            .outer_iterations(70)
            .inner_iterations(50)
            .seed(seed)
            .build();
        let mps = MpsGenerator::new(&bm.circuit, config).generate().unwrap();
        let ws_name = name.replace(' ', "_");
        assert_facade_matches_raw(&ws_name, &mps, 1_200, seed ^ 0xD1FF);
    }
}

/// The scratch/batch shims agree with their typed replacements too.
#[test]
fn deprecated_scratch_and_batch_shims_agree() {
    let bm = benchmarks::by_name("circ02").unwrap();
    let config = GeneratorConfig::builder()
        .outer_iterations(60)
        .inner_iterations(40)
        .seed(5)
        .build();
    let mps = MpsGenerator::new(&bm.circuit, config).generate().unwrap();
    let raw_stream = probe_stream(&mps, 500, 0xBA7C4);
    let typed_stream: Vec<Dims> = raw_stream
        .iter()
        .map(|raw| Dims::from_vec_unchecked(raw.clone()))
        .collect();

    assert_eq!(
        mps.query_batch_pairs(&raw_stream),
        mps.query_batch(&typed_stream)
    );
    let mut s1 = Vec::new();
    let mut s2 = Vec::new();
    for (raw, typed) in raw_stream.iter().zip(&typed_stream) {
        assert_eq!(
            mps.query_with_scratch_pairs(raw, &mut s1),
            mps.query_with_scratch(typed, &mut s2)
        );
        assert_eq!(mps.instantiate_pairs(raw), mps.instantiate(typed));
        assert_eq!(
            mps.instantiate_compacted_pairs(raw),
            mps.instantiate_compacted(typed)
        );
    }
}
