//! Differential battery across the two persistence formats: every
//! structure — the committed golden fixture plus a generated corpus —
//! must round-trip `mps-v1` JSON → `mps-v2` binary → JSON with
//! byte-identical re-serialization, and the structure loaded from
//! either format must answer identically under a large random probe
//! battery (≥ 1000 probes per circuit via
//! [`CompiledQueryIndex::verify_against`]).
#![cfg(feature = "serde")]

use analog_mps::mps::{GeneratorConfig, MpsGenerator, MultiPlacementStructure};
use analog_mps::netlist::benchmarks;
use analog_mps::serve::CompiledQueryIndex;

const FIXTURE: &str = include_str!("fixtures/circ02_mps.json");

/// Random probes per circuit. The registry's load-time check uses a few
/// dozen; the differential battery goes much deeper.
const PROBES: usize = 1000;

const PROBE_SEED: u64 = 0xD1FF_0001;

/// The full differential check for one structure: both conversion
/// directions re-serialize byte-identically, and the binary-loaded copy
/// answers every probe exactly like the JSON-loaded one.
fn assert_formats_equivalent(mps: &MultiPlacementStructure, label: &str) {
    let json = mps.to_json();
    let bin = mps.to_bin();

    // JSON → binary → JSON: byte-identical re-serialization.
    let from_json = MultiPlacementStructure::from_json(&json)
        .unwrap_or_else(|e| panic!("{label}: JSON round-trip load failed: {e}"));
    let from_bin = MultiPlacementStructure::from_bin(&bin)
        .unwrap_or_else(|e| panic!("{label}: binary round-trip load failed: {e}"));
    assert_eq!(
        from_bin.to_json(),
        json,
        "{label}: binary-loaded structure must re-serialize to identical JSON"
    );
    // Binary → JSON → binary: the reverse direction is bit-stable too.
    assert_eq!(
        from_json.to_bin(),
        bin,
        "{label}: JSON-loaded structure must re-serialize to identical binary"
    );

    // Identical answers: compile each load into the flat query index and
    // cross-verify against the *other* load over a deep probe battery.
    CompiledQueryIndex::build(&from_bin)
        .verify_against(&from_json, PROBES, PROBE_SEED)
        .unwrap_or_else(|e| panic!("{label}: binary load diverges from JSON load: {e}"));
    CompiledQueryIndex::build(&from_json)
        .verify_against(&from_bin, PROBES, PROBE_SEED.rotate_left(17))
        .unwrap_or_else(|e| panic!("{label}: JSON load diverges from binary load: {e}"));
}

#[test]
fn golden_fixture_survives_both_formats() {
    let mps = MultiPlacementStructure::from_json(FIXTURE).expect("fixture loads");
    assert_formats_equivalent(&mps, "golden fixture circ02");
    // The fixture pin itself: through the binary format and back, the
    // pretty serialization still reproduces the committed bytes.
    let back = MultiPlacementStructure::from_bin(&mps.to_bin()).unwrap();
    assert_eq!(
        back.to_json_pretty(),
        FIXTURE,
        "fixture → binary → JSON must reproduce the committed fixture byte-for-byte"
    );
}

#[test]
fn generated_corpus_survives_both_formats() {
    // Every committed benchmark circuit, generated at test-friendly
    // iteration counts — small enough to stay fast, large enough that
    // the structures carry non-trivial rows/annihilation history.
    for bm in benchmarks::all() {
        let config = GeneratorConfig::builder()
            .outer_iterations(40)
            .inner_iterations(30)
            .seed(0xBEEF ^ bm.circuit.block_count() as u64)
            .build();
        let mps = MpsGenerator::new(&bm.circuit, config)
            .generate()
            .unwrap_or_else(|e| panic!("{}: generation failed: {e}", bm.name));
        assert_formats_equivalent(&mps, bm.name);
    }
}
