//! Refinement-under-live-load e2e: pipelined TCP clients hammer a hot
//! set of dimension vectors while the refiner re-anneals the hot region
//! and hot-swaps the improvement mid-stream. Every answer must be
//! bit-identical to a direct compiled-index query against *some
//! published version* of the structure (the consistency model: each
//! request is answered entirely by one snapshot — old or new — never a
//! blend), zero requests may be dropped or errored, the registry
//! generation must be monotone across publishes, and the refined
//! artifact on disk must reload bit-identically after a "restart".
#![cfg(feature = "serde")]

use analog_mps::api::{ServerConfig, Workspace};
use analog_mps::mps::GeneratorConfig;
use analog_mps::netlist::benchmarks;
use analog_mps::serve::ServedStructure;
use analog_mps::Dims;
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const CLIENTS: usize = 3;
const REQUESTS_PER_CLIENT: usize = 240;
const PIPELINE_DEPTH: usize = 4;
const MAX_REFINE_ATTEMPTS: usize = 12;

fn dims_json(dims: &Dims) -> String {
    let pairs: Vec<String> = dims.iter().map(|&(w, h)| format!("[{w},{h}]")).collect();
    format!("[{}]", pairs.join(","))
}

#[test]
fn refinement_under_live_load_never_diverges_and_survives_restart() {
    let dir = std::env::temp_dir().join(format!("mps_serve_refine_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut ws = Workspace::open(&dir).unwrap();
    let circuit = benchmarks::circ01();
    // Deliberately under-annealed so the refiner has room to win.
    let config = GeneratorConfig::builder()
        .outer_iterations(10)
        .inner_iterations(10)
        .seed(0x0EF1)
        .build();
    ws.generate_or_load("circ01", &circuit, config).unwrap();

    let server = Arc::new(
        ws.serve_server(ServerConfig {
            workers: 3,
            cache_entries: 512,
            cache_shards: 4,
            ..ServerConfig::default()
        })
        .unwrap(),
    );
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve_tcp(listener));
    }

    // The hot set: every axis stays in its lowest tenth, so the heatmap
    // concentrates in one bin per axis — exactly the signal the refiner
    // keys on.
    let bounds = circuit.dim_bounds();
    let hot: Vec<Dims> = (0..16)
        .map(|k| {
            bounds
                .iter()
                .map(|b| {
                    let probe = |i: &analog_mps::geom::Interval| {
                        let tenth = (i.len() as i64 / 10).max(1);
                        i.lo() + (k * 5) % tenth
                    };
                    (probe(&b.w), probe(&b.h))
                })
                .collect()
        })
        .collect();

    // Every version the registry ever serves, captured around each
    // publish: answers are validated against this set after the fact, so
    // a response that raced a publish can match either side of the swap.
    let versions: Mutex<Vec<Arc<ServedStructure>>> =
        Mutex::new(vec![server.registry().get("circ01").unwrap()]);
    let accepted_publishes = AtomicU64::new(0);
    // (client, hot index, answered id) triples, validated after join.
    let answers: Mutex<Vec<(usize, usize, Option<u64>)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        // The refiner: waits for enough recorded traffic, then triggers
        // synchronous refine passes over the wire until one is accepted
        // (each pass re-seeds, so retries explore new walks).
        let (server_ref, versions_ref) = (&server, &versions);
        let accepted_ref = &accepted_publishes;
        scope.spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let _ = stream.set_nodelay(true);
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let last_generation = server_ref.registry().generation();
            for _ in 0..MAX_REFINE_ATTEMPTS {
                writeln!(writer, r#"{{"kind":"refine"}}"#).unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                let value: Value = serde_json::parse(line.trim_end()).unwrap();
                assert_eq!(
                    value.get("ok").and_then(Value::as_bool),
                    Some(true),
                    "refine refused mid-stream: {line}"
                );
                match value.get("outcome").and_then(Value::as_str) {
                    Some("accepted") => {
                        // Generation is monotone across publishes.
                        let generation = server_ref.registry().generation();
                        assert!(
                            generation > last_generation,
                            "publish must bump the generation ({last_generation} -> {generation})"
                        );
                        versions_ref
                            .lock()
                            .unwrap()
                            .push(server_ref.registry().get("circ01").unwrap());
                        accepted_ref.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    Some("rejected") | Some("no_candidate") => {
                        // Not enough traffic yet, or an unlucky seed —
                        // give the clients time to feed the heatmap.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                    }
                    other => panic!("unexpected refine outcome {other:?}: {line}"),
                }
            }
        });

        for client in 0..CLIENTS {
            let (hot, answers) = (&hot, &answers);
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let _ = stream.set_nodelay(true);
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut sent: Vec<usize> = Vec::new(); // req id -> hot index
                let mut outstanding = 0usize;
                let mut answered = 0usize;

                let mut read_one = |sent: &Vec<usize>| {
                    let mut line = String::new();
                    assert!(
                        reader.read_line(&mut line).unwrap() > 0,
                        "client {client}: dropped mid-stream"
                    );
                    let value: Value =
                        serde_json::parse(line.trim_end()).expect("response is JSON");
                    assert_eq!(
                        value.get("ok").and_then(Value::as_bool),
                        Some(true),
                        "client {client} refused: {line}"
                    );
                    let req = value.get("req").and_then(Value::as_u64).expect("tagged") as usize;
                    answers.lock().unwrap().push((
                        client,
                        sent[req],
                        value.get("id").and_then(Value::as_u64),
                    ));
                };

                for n in 0..REQUESTS_PER_CLIENT {
                    let id = sent.len();
                    let hot_index = (client * 11 + n * 3) % hot.len();
                    sent.push(hot_index);
                    writeln!(
                        writer,
                        r#"{{"id":{id},"kind":"query","structure":"circ01","dims":{}}}"#,
                        dims_json(&hot[hot_index])
                    )
                    .unwrap();
                    outstanding += 1;
                    if outstanding == PIPELINE_DEPTH {
                        read_one(&sent);
                        outstanding -= 1;
                        answered += 1;
                    }
                    // Pace the stream a little so publishes land while
                    // requests are genuinely in flight.
                    if n % 32 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
                while outstanding > 0 {
                    read_one(&sent);
                    outstanding -= 1;
                    answered += 1;
                }
                assert_eq!(
                    answered, REQUESTS_PER_CLIENT,
                    "client {client} dropped requests"
                );
            });
        }
        // If every client finishes before the refiner lands an accepted
        // pass, it keeps trying against the (now complete) heat signal;
        // the scope joins it for us.
    });

    assert!(
        accepted_publishes.load(Ordering::Relaxed) >= 1,
        "at least one refinement pass must be accepted under hot traffic"
    );

    // Zero divergence: every answer matches some published version's
    // compiled index (and the versions themselves are self-consistent).
    let versions = versions.into_inner().unwrap();
    for served in &versions {
        served.structure().check_invariants().unwrap();
    }
    let answers = answers.into_inner().unwrap();
    assert_eq!(answers.len(), CLIENTS * REQUESTS_PER_CLIENT);
    for (client, hot_index, got) in &answers {
        let dims = &hot[*hot_index];
        let matches = versions
            .iter()
            .any(|served| served.index().query(dims).map(|id| u64::from(id.0)) == *got);
        assert!(
            matches,
            "client {client} hot[{hot_index}] answered {got:?}, which no published \
             version of the structure would produce"
        );
    }

    // Restart: the refined artifact reloads from disk bit-identically —
    // ServedStructure::open re-runs the full validation funnel including
    // the compiled-index cross-check.
    let live = server.registry().get("circ01").unwrap();
    let reloaded = ServedStructure::open("circ01", ws.artifact_path("circ01")).unwrap();
    assert_eq!(
        reloaded.structure().to_json(),
        live.structure().to_json(),
        "the persisted artifact must be the exact structure being served"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
