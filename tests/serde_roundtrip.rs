//! Generate-once / use-everywhere: a structure serialized to JSON and
//! reloaded must answer every query identically — the property the whole
//! multi-placement workflow (Fig. 1) depends on.
//!
//! Served offline by the vendored serde/serde_json subsets; the `serde`
//! feature is on by default, so this suite runs in a plain `cargo test`.
#![cfg(feature = "serde")]

use analog_mps::mps::{GeneratorConfig, MpsGenerator, MultiPlacementStructure};
use analog_mps::netlist::benchmarks;
use analog_mps::placer::SequencePair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn generated_structure() -> (&'static str, MultiPlacementStructure) {
    let bm = benchmarks::by_name("circ02").unwrap();
    let config = GeneratorConfig::builder()
        .outer_iterations(80)
        .inner_iterations(60)
        .seed(5)
        .build();
    let mps = MpsGenerator::new(&bm.circuit, config).generate().unwrap();
    ("circ02", mps)
}

fn random_probe(circuit: &analog_mps::netlist::Circuit, rng: &mut StdRng) -> analog_mps::Dims {
    circuit
        .dim_bounds()
        .iter()
        .map(|b| {
            (
                rng.random_range(b.w.lo()..=b.w.hi()),
                rng.random_range(b.h.lo()..=b.h.hi()),
            )
        })
        .collect()
}

#[test]
fn structure_roundtrips_through_json_with_identical_answers() {
    let bm = benchmarks::by_name("circ02").unwrap();
    let (_, mps) = generated_structure();

    // Raw (envelope-less) serde path, as a library consumer would use it.
    let json = serde_json::to_string(&mps).expect("structure serializes");
    let reloaded: MultiPlacementStructure =
        serde_json::from_str(&json).expect("structure deserializes");

    reloaded.check_invariants().expect("invariants survive");
    assert_eq!(reloaded.placement_count(), mps.placement_count());
    assert_eq!(reloaded.floorplan(), mps.floorplan());
    assert!((reloaded.coverage() - mps.coverage()).abs() < 1e-12);

    // Differential battery: 1,000 seeded probe vectors must get identical
    // query and instantiation answers from original and reload.
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..1_000 {
        let dims = random_probe(&bm.circuit, &mut rng);
        assert_eq!(reloaded.query(&dims), mps.query(&dims));
        assert_eq!(reloaded.instantiate(&dims), mps.instantiate(&dims));
        assert_eq!(
            reloaded.instantiate_or_fallback(&dims),
            mps.instantiate_or_fallback(&dims)
        );
    }
}

#[test]
fn envelope_roundtrip_matches_raw_roundtrip() {
    let bm = benchmarks::by_name("circ02").unwrap();
    let (_, mps) = generated_structure();
    let reloaded = MultiPlacementStructure::from_json(&mps.to_json()).expect("envelope loads back");
    assert_eq!(
        reloaded.to_json(),
        mps.to_json(),
        "save → load → save is a fixpoint"
    );
    let mut rng = StdRng::seed_from_u64(1234);
    for _ in 0..200 {
        let dims = random_probe(&bm.circuit, &mut rng);
        assert_eq!(reloaded.query(&dims), mps.query(&dims));
    }
}

/// The documented None-fallback contract: a structure without an installed
/// backup template serves uncovered space with the canonical single-row
/// packing — deterministically, and identically before and after a
/// save/load cycle. (The generator installs a template, so the bare case
/// is built by re-inserting the generated entries into a fresh structure —
/// the path external structure builders take.)
#[test]
fn none_fallback_is_deterministic_across_reload() {
    let bm = benchmarks::by_name("circ02").unwrap();
    let (_, generated) = generated_structure();
    let mut mps = MultiPlacementStructure::new(&bm.circuit, generated.floorplan());
    for (_, entry) in generated.iter() {
        mps.insert_unchecked(entry.clone());
    }
    assert!(mps.fallback().is_none());

    let reloaded = MultiPlacementStructure::from_json(&mps.to_json()).unwrap();
    assert!(
        reloaded.fallback().is_none(),
        "reload preserves the absence"
    );

    let n = bm.circuit.block_count();
    let mut rng = StdRng::seed_from_u64(991);
    let mut uncovered_seen = 0usize;
    // Bounded scan: if generation ever reaches full coverage there is no
    // uncovered space to probe and the contract holds vacuously.
    for _ in 0..200_000 {
        if uncovered_seen == 25 {
            break;
        }
        let dims = random_probe(&bm.circuit, &mut rng);
        if mps.query(&dims).is_some() {
            continue;
        }
        uncovered_seen += 1;
        let expected = SequencePair::row(n).pack(&dims);
        assert_eq!(mps.instantiate_or_fallback(&dims), expected);
        assert_eq!(reloaded.instantiate_or_fallback(&dims), expected);
    }
}

#[test]
fn circuits_roundtrip_through_json() {
    for bm in benchmarks::all() {
        let json = serde_json::to_string(&bm.circuit).expect("serialize");
        let back: analog_mps::netlist::Circuit = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, bm.circuit, "{}", bm.name);
        assert_eq!(back.terminal_count(), bm.circuit.terminal_count());
    }
}

#[test]
fn sizing_models_roundtrip_through_json() {
    // The vendored serde_json prints floats with shortest-round-trip
    // precision, so the models come back bit-exactly — the functional
    // comparison doubles as a regression guard on that property.
    for bm in benchmarks::all() {
        let json = serde_json::to_string(&bm.model).expect("serialize");
        let back: analog_mps::netlist::modgen::SizingModel =
            serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, bm.model, "{}", bm.name);
        let ranges = bm.model.param_ranges();
        for t in [0.0, 0.3, 0.7, 1.0] {
            let params: Vec<f64> = ranges.iter().map(|&(lo, hi)| lo + (hi - lo) * t).collect();
            assert_eq!(
                back.dims(&params),
                bm.model.dims(&params),
                "{} at t={t}",
                bm.name
            );
        }
    }
}
