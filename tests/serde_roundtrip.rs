//! Generate-once / use-everywhere: a structure serialized to JSON and
//! reloaded must answer every query identically — the property the whole
//! multi-placement workflow (Fig. 1) depends on.
//!
//! Requires the `serde` feature, which in turn needs the real serde +
//! serde_json crates; the offline build environment cannot fetch them, so
//! this suite compiles to nothing until a future PR vendors or enables
//! them.
#![cfg(feature = "serde")]

use analog_mps::geom::Coord;
use analog_mps::mps::{GeneratorConfig, MpsGenerator, MultiPlacementStructure};
use analog_mps::netlist::benchmarks;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn structure_roundtrips_through_json_with_identical_answers() {
    let bm = benchmarks::by_name("circ02").unwrap();
    let config = GeneratorConfig::builder()
        .outer_iterations(80)
        .inner_iterations(60)
        .seed(5)
        .build();
    let mps = MpsGenerator::new(&bm.circuit, config).generate().unwrap();

    let json = serde_json::to_string(&mps).expect("structure serializes");
    let reloaded: MultiPlacementStructure =
        serde_json::from_str(&json).expect("structure deserializes");

    reloaded.check_invariants().expect("invariants survive");
    assert_eq!(reloaded.placement_count(), mps.placement_count());
    assert_eq!(reloaded.floorplan(), mps.floorplan());
    assert!((reloaded.coverage() - mps.coverage()).abs() < 1e-12);

    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..500 {
        let dims: Vec<(Coord, Coord)> = bm
            .circuit
            .dim_bounds()
            .iter()
            .map(|b| {
                (
                    rng.random_range(b.w.lo()..=b.w.hi()),
                    rng.random_range(b.h.lo()..=b.h.hi()),
                )
            })
            .collect();
        assert_eq!(reloaded.query(&dims), mps.query(&dims));
        assert_eq!(
            reloaded.instantiate_or_fallback(&dims),
            mps.instantiate_or_fallback(&dims)
        );
    }
}

#[test]
fn circuits_roundtrip_through_json() {
    for bm in benchmarks::all() {
        let json = serde_json::to_string(&bm.circuit).expect("serialize");
        let back: analog_mps::netlist::Circuit = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, bm.circuit, "{}", bm.name);
        assert_eq!(back.terminal_count(), bm.circuit.terminal_count());
    }
}

#[test]
fn sizing_models_roundtrip_through_json_functionally() {
    // JSON decimal round-tripping may perturb derived float bounds in the
    // last ulp (e.g. 990.0 vs 990.0000000000001), so compare the models
    // *functionally*: identical dimensions at sampled parameters.
    for bm in benchmarks::all() {
        let json = serde_json::to_string(&bm.model).expect("serialize");
        let back: analog_mps::netlist::modgen::SizingModel =
            serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.block_count(), bm.model.block_count(), "{}", bm.name);
        let ranges = bm.model.param_ranges();
        for t in [0.0, 0.3, 0.7, 1.0] {
            let params: Vec<f64> = ranges.iter().map(|&(lo, hi)| lo + (hi - lo) * t).collect();
            assert_eq!(
                back.dims(&params),
                bm.model.dims(&params),
                "{} at t={t}",
                bm.name
            );
        }
    }
}
