//! End-to-end integration: generate → validate invariants → query →
//! instantiate → synthesize, across several benchmark circuits.

use analog_mps::mps::{GeneratorConfig, MpsGenerator, SynthesisLoop};
use analog_mps::netlist::benchmarks;
use analog_mps::placer::CostCalculator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn quick(outer: usize, inner: usize, seed: u64) -> GeneratorConfig {
    GeneratorConfig::builder()
        .outer_iterations(outer)
        .inner_iterations(inner)
        .seed(seed)
        .build()
}

fn random_dims(circuit: &analog_mps::netlist::Circuit, rng: &mut StdRng) -> analog_mps::Dims {
    circuit
        .dim_bounds()
        .iter()
        .map(|b| {
            (
                rng.random_range(b.w.lo()..=b.w.hi()),
                rng.random_range(b.h.lo()..=b.h.hi()),
            )
        })
        .collect()
}

#[test]
fn structures_satisfy_all_invariants_across_benchmarks() {
    for name in ["circ01", "circ02", "TwoStage Opamp", "Mixer"] {
        let bm = benchmarks::by_name(name).expect("known benchmark");
        let mps = MpsGenerator::new(&bm.circuit, quick(80, 60, 17))
            .generate()
            .expect("generation succeeds");
        mps.check_invariants()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(mps.placement_count() > 0, "{name}: empty structure");
    }
}

#[test]
fn eq5_uniqueness_every_query_covered_by_owner() {
    let bm = benchmarks::by_name("circ06").unwrap();
    let mps = MpsGenerator::new(&bm.circuit, quick(120, 60, 3))
        .generate()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let mut hits = 0;
    for _ in 0..500 {
        let dims = random_dims(&bm.circuit, &mut rng);
        if let Some(id) = mps.query(&dims) {
            hits += 1;
            let entry = mps.entry(id).expect("query returns live ids");
            assert!(
                entry.covers(&dims),
                "returned placement does not cover the queried dims"
            );
        }
    }
    // With this budget at least some of the space must be covered.
    assert!(hits > 0, "no query ever hit the structure");
}

#[test]
fn instantiations_are_always_legal_and_inside_floorplan() {
    let bm = benchmarks::by_name("circ08").unwrap();
    let mps = MpsGenerator::new(&bm.circuit, quick(100, 60, 5))
        .generate()
        .unwrap();
    let fp = mps.floorplan();
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..300 {
        let dims = random_dims(&bm.circuit, &mut rng);
        if let Some(p) = mps.instantiate(&dims) {
            assert!(p.is_legal(&dims, Some(&fp)));
        }
        // The fallback path must be legal too (template packing ignores
        // the floorplan bound; legality without bound is its contract).
        let p = mps.instantiate_or_fallback(&dims);
        assert!(p.is_legal(&dims, None));
    }
}

#[test]
fn generation_is_reproducible_end_to_end() {
    let bm = benchmarks::by_name("circ01").unwrap();
    let run = |seed| {
        let (mps, report) = MpsGenerator::new(&bm.circuit, quick(60, 50, seed))
            .generate_with_report()
            .unwrap();
        (mps.placement_count(), report.coverage, report.explorer)
    };
    assert_eq!(run(9), run(9));
    // Different seeds explore differently (astronomically unlikely to tie
    // on every counter).
    assert_ne!(run(9).2, run(10).2);
}

#[test]
fn synthesis_loop_drives_structure_queries() {
    let bm = benchmarks::by_name("TwoStage Opamp").unwrap();
    let mps = MpsGenerator::new(&bm.circuit, quick(120, 80, 8))
        .generate()
        .unwrap();
    let outcome = SynthesisLoop::new(&bm.circuit, &bm.model, &mps).run(400, 4);
    assert_eq!(outcome.queries, 401);
    assert!(outcome.best_performance.is_finite());
    assert!(bm.circuit.admits_dims(&outcome.best_dims));
    // Every query — covered or fallback — must have been answered fast.
    assert!(
        outcome.mean_instantiation_time().as_millis() < 10,
        "instantiation too slow: {:?}",
        outcome.mean_instantiation_time()
    );
}

#[test]
fn structure_beats_or_matches_fallback_inside_coverage() {
    // Inside covered space the selected placement was optimized for that
    // region; repacked at the query dimensions (the compacted variant,
    // apples-to-apples with the template which also repacks per query) it
    // should be competitive with the generic fallback template in
    // aggregate.
    let bm = benchmarks::by_name("circ01").unwrap();
    let mps = MpsGenerator::new(&bm.circuit, quick(150, 80, 2))
        .generate()
        .unwrap();
    let calc = CostCalculator::new(&bm.circuit);
    let fallback = mps.fallback().expect("generator installs fallback").clone();
    let mut rng = StdRng::seed_from_u64(31);
    let mut mps_total = 0.0;
    let mut fb_total = 0.0;
    let mut samples = 0;
    for _ in 0..400 {
        let dims = random_dims(&bm.circuit, &mut rng);
        if let Some(p) = mps.instantiate_compacted(&dims) {
            mps_total += calc.cost(&p, &dims);
            fb_total += calc.cost(&fallback.instantiate(&dims), &dims);
            samples += 1;
        }
    }
    if samples >= 20 {
        assert!(
            mps_total <= fb_total * 1.15,
            "selected placements ({}) should be competitive with the fallback ({}) over {} samples",
            mps_total / samples as f64,
            fb_total / samples as f64,
            samples
        );
    }
}
