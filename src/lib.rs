//! # analog-mps — multi-placement structures for analog circuit synthesis
//!
//! Umbrella crate for the reproduction of *"Multi-Placement Structures for
//! Fast and Optimized Placement in Analog Circuit Synthesis"* (Badaoui &
//! Vemuri, DATE 2005). It re-exports the public API of every workspace crate
//! so downstream users depend on a single crate:
//!
//! * [`geom`] — integer geometry: intervals, rectangles, interval-row maps,
//!   dimension-space boxes.
//! * [`netlist`] — circuits, blocks, nets, module generators, and the nine
//!   Table-1 benchmark circuits.
//! * [`anneal`] — the generic simulated-annealing engine used by both levels
//!   of the paper's nested annealer and by the baseline placers.
//! * [`placer`] — placement substrate: cost functions (wirelength + area),
//!   placement expansion, template baseline, flat-SA baseline, sequence
//!   pairs, symmetry constraints.
//! * [`mps`] — the paper's contribution: the multi-placement structure, its
//!   nested-SA generator, and the layout-inclusive synthesis loop.
//! * [`serve`] — the query-serving subsystem: compiled allocation-free
//!   query plans, a hot-swappable registry of persisted structures, and
//!   the line-protocol engine behind the `mps-serve` binary.
//!
//! # Quickstart
//!
//! ```
//! use analog_mps::netlist::benchmarks;
//! use analog_mps::mps::{GeneratorConfig, MpsGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // One-time generation for a topology (tiny budget to keep doctests fast).
//! let circuit = benchmarks::circ01();
//! let config = GeneratorConfig::builder()
//!     .outer_iterations(40)
//!     .inner_iterations(30)
//!     .seed(7)
//!     .build();
//! let structure = MpsGenerator::new(&circuit, config).generate()?;
//!
//! // Iterative use in a synthesis loop: sizes in, floorplan out.
//! let dims = circuit.clamp_dims(&circuit.min_dims());
//! let placement = structure.instantiate_or_fallback(&dims);
//! assert!(placement.is_legal(&dims, None));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use mps_anneal as anneal;
pub use mps_core as mps;
pub use mps_geom as geom;
pub use mps_netlist as netlist;
pub use mps_placer as placer;
pub use mps_serve as serve;
