//! # analog-mps — multi-placement structures for analog circuit synthesis
//!
//! Umbrella crate for the reproduction of *"Multi-Placement Structures for
//! Fast and Optimized Placement in Analog Circuit Synthesis"* (Badaoui &
//! Vemuri, DATE 2005). It hosts the user-facing facade ([`api`]) and
//! re-exports the public API of every workspace crate:
//!
//! * [`api`] — **start here**: the [`Workspace`](api::Workspace) session
//!   object spanning generate → persist → compile → serve, the one
//!   [`MpsError`](api::MpsError) every facade call returns, and the typed
//!   [`Dims`] dimension vectors the whole query surface speaks.
//! * [`geom`] — integer geometry: intervals, rectangles, interval-row maps,
//!   dimension-space boxes, typed dimension vectors.
//! * [`netlist`] — circuits, blocks, nets, module generators, and the nine
//!   Table-1 benchmark circuits.
//! * [`anneal`] — the generic simulated-annealing engine used by both levels
//!   of the paper's nested annealer and by the baseline placers.
//! * [`placer`] — placement substrate: cost functions (wirelength + area),
//!   placement expansion, template baseline, flat-SA baseline, sequence
//!   pairs, symmetry constraints.
//! * [`mps`] — the paper's contribution: the multi-placement structure, its
//!   nested-SA generator, and the layout-inclusive synthesis loop.
//! * [`serve`] — the query-serving subsystem: compiled allocation-free
//!   query plans, a hot-swappable registry of persisted structures, and
//!   the line-protocol engine behind the `mps-serve` binary.
//!
//! # Quickstart
//!
//! The [`api::Workspace`] owns the paper's *generate once, query many*
//! lifecycle: the first run generates and persists; every later run loads
//! the artifact and answers through the compiled query plan.
//!
//! ```
//! use analog_mps::api::Workspace;
//! use analog_mps::mps::GeneratorConfig;
//! use analog_mps::netlist::benchmarks;
//!
//! # fn main() -> Result<(), analog_mps::api::MpsError> {
//! let dir = std::env::temp_dir().join(format!("mps_quickstart_{}", std::process::id()));
//! let mut ws = Workspace::open(&dir)?;
//!
//! // Resolve a structure by name: load the artifact if present,
//! // generate (tiny budget to keep doctests fast) and persist otherwise.
//! let circuit = benchmarks::circ01();
//! let config = GeneratorConfig::builder()
//!     .outer_iterations(40)
//!     .inner_iterations(30)
//!     .seed(7)
//!     .build();
//! ws.generate_or_load("circ01", &circuit, config)?;
//!
//! // Iterative use in a synthesis loop: typed sizes in, floorplan out,
//! // answered by the compiled query plan in microseconds.
//! let sizing = circuit.min_dims();
//! let placement = ws.instantiate("circ01", &sizing)?;
//! assert!(placement.is_legal(&sizing, None));
//!
//! // The same directory serves heavy traffic behind `mps-serve`:
//! let registry = ws.serve_registry()?;
//! assert_eq!(registry.names(), vec!["circ01"]);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```
//!
//! Typed dimension vectors are built with [`Dims::new`], the
//! [`dims!`] macro, or circuit helpers (`circuit.min_dims()`,
//! `circuit.clamp_dims(..)`); they deref to `[(Coord, Coord)]`, so
//! packing, legality and cost APIs keep working on them unchanged.
//!
//! # Migrating from the raw (PR ≤ 3) APIs
//!
//! See the [`api`] module docs for the old → new migration table. The
//! raw-slice entry points survive one release as `#[deprecated]`
//! `*_pairs` shims with bit-identical answers.

#![forbid(unsafe_code)]

pub use mps_anneal as anneal;
pub use mps_core as mps;
pub use mps_geom as geom;
pub use mps_netlist as netlist;
pub use mps_placer as placer;
pub use mps_serve as serve;

#[cfg(feature = "serde")]
pub mod api;

// The facade's working vocabulary, promoted to the crate root.
pub use mps_geom::{dims, Coord, Dims, DimsError};
