//! The workspace: one session object spanning generate → persist →
//! compile → serve.
//!
//! The paper's economics are *generate once, query many* (Fig. 1); the
//! repo grew each stage separately — [`MpsGenerator`] for generation,
//! `save_json`/`load_json` for persistence, [`CompiledQueryIndex`] for
//! the serving hot path, [`StructureRegistry`] for hot-swappable
//! serving — and every consumer re-stitched them by hand. A
//! [`Workspace`] is that stitching done once, behind one directory:
//!
//! * [`Workspace::generate_or_load`] resolves a structure by name:
//!   an existing `mps-v1` artifact is loaded (re-validated, circuit
//!   cross-checked), otherwise the structure is generated **and
//!   persisted** so the next session loads instead;
//! * every handle auto-compiles a [`CompiledQueryIndex`], cross-checked
//!   against the interpretive path before first use, so
//!   [`Workspace::query`] always runs the fast plan with bit-identical
//!   answers;
//! * [`Workspace::serve_registry`] opens the same directory as a
//!   hot-swappable [`StructureRegistry`], ready to put behind
//!   `mps-serve`.
//!
//! [`MpsGenerator`]: mps_core::MpsGenerator
//! [`CompiledQueryIndex`]: mps_serve::CompiledQueryIndex

use crate::api::{MpsError, QueryError};
use mps_core::{
    refine_region, GenerationReport, GeneratorConfig, MpsGenerator, MultiPlacementStructure,
    PlacementId, RefineReport,
};
use mps_geom::{BlockRanges, Dims};
use mps_netlist::Circuit;
use mps_placer::Placement;
use mps_serve::{ServedStructure, Server, ServerConfig, StructureRegistry};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A structure handle: the validated structure plus its compiled query
/// index, immutable for its whole life (the same type the serving
/// registry hands out).
pub type StructureHandle = ServedStructure;

/// How [`Workspace::generate_or_load`] came by a structure.
#[derive(Debug)]
pub enum ArtifactSource {
    /// Freshly generated (and persisted); the report carries timing and
    /// explorer counters.
    Generated(GenerationReport),
    /// Loaded and re-validated from this artifact file; no generation
    /// happened.
    Loaded(PathBuf),
}

/// A directory of named `mps-v1` artifacts plus the compiled handles
/// over them — the facade's session object.
///
/// # Example
///
/// ```
/// use analog_mps::api::Workspace;
/// use analog_mps::mps::GeneratorConfig;
/// use analog_mps::netlist::benchmarks;
///
/// # fn main() -> Result<(), analog_mps::api::MpsError> {
/// let dir = std::env::temp_dir().join(format!("mps_ws_doc_{}", std::process::id()));
/// let mut ws = Workspace::open(&dir)?;
/// let circuit = benchmarks::circ01();
/// let config = GeneratorConfig::builder().outer_iterations(25).seed(7).build();
///
/// // First call generates and persists; a rerun loads the artifact.
/// ws.generate_or_load("circ01", &circuit, config)?;
///
/// // Typed queries through the compiled plan:
/// let sizing = circuit.min_dims();
/// let id = ws.query("circ01", &sizing)?;
/// let placement = ws.instantiate("circ01", &sizing)?;
/// assert!(placement.is_legal(&sizing, None));
/// assert_eq!(id.is_some(), ws.handle("circ01")?.structure().query(&sizing).is_some());
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Workspace {
    dir: PathBuf,
    handles: BTreeMap<String, Arc<ServedStructure>>,
}

impl Workspace {
    /// Opens (creating if necessary) a workspace directory.
    ///
    /// Opening is lazy: no artifact is read until it is addressed by
    /// name, so a workspace over a large artifact store costs nothing
    /// up front.
    ///
    /// # Errors
    ///
    /// Returns [`MpsError::Persist`] when the directory cannot be
    /// created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, MpsError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            handles: BTreeMap::new(),
        })
    }

    /// The backing directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where the artifact for `name` lives:
    /// `<dir>/<name>.mps.json` — the same layout the bench bins'
    /// `--save` flag and the `mps-serve` registry use.
    #[must_use]
    pub fn artifact_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.mps.json"))
    }

    /// Names with a live handle in this session (loaded or generated),
    /// sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.handles.keys().cloned().collect()
    }

    /// The live handle behind `name`.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::UnknownStructure`] when `name` has not been
    /// loaded or generated in this session.
    pub fn handle(&self, name: &str) -> Result<&StructureHandle, MpsError> {
        self.handles
            .get(name)
            .map(Arc::as_ref)
            .ok_or_else(|| self.unknown(name))
    }

    /// A shareable reference to the handle behind `name` (for worker
    /// pools and registries).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::UnknownStructure`] when `name` has not been
    /// loaded or generated in this session.
    pub fn handle_arc(&self, name: &str) -> Result<Arc<StructureHandle>, MpsError> {
        self.handles
            .get(name)
            .cloned()
            .ok_or_else(|| self.unknown(name))
    }

    /// Resolves `name` for `circuit`: loads the artifact if present
    /// (re-validating the envelope, the Eq.-5 battery, the compiled
    /// index, *and* the circuit's dimension bounds), otherwise generates
    /// under `config` and persists the result for future sessions.
    ///
    /// # Errors
    ///
    /// Any stage error: [`MpsError::Persist`] on a corrupt artifact or
    /// unwritable directory, [`QueryError::CircuitMismatch`] when the
    /// artifact belongs to a different circuit, [`MpsError::Generate`]
    /// on invalid circuits, [`MpsError::Serve`] when the compiled index
    /// diverges.
    pub fn generate_or_load(
        &mut self,
        name: &str,
        circuit: &Circuit,
        config: GeneratorConfig,
    ) -> Result<(&StructureHandle, ArtifactSource), MpsError> {
        let path = self.artifact_path(name);
        if path.is_file() {
            // Validate fully *before* installing: a wrong-circuit
            // artifact must not become (or replace) a live handle.
            let served = ServedStructure::open(name, &path)?;
            if served.structure().bounds() != circuit.dim_bounds() {
                return Err(QueryError::CircuitMismatch { name: name.into() }.into());
            }
            self.handles.insert(name.to_owned(), Arc::new(served));
            return Ok((self.handles[name].as_ref(), ArtifactSource::Loaded(path)));
        }
        let (mps, report) = MpsGenerator::new(circuit, config).generate_with_report()?;
        let handle = self.install(name, mps)?;
        Ok((handle, ArtifactSource::Generated(report)))
    }

    /// Loads the artifact for `name`, replacing any live handle.
    ///
    /// # Errors
    ///
    /// Returns [`MpsError::Serve`] (wrapping the persist-layer
    /// rejection) when the artifact is missing, malformed, wrong-format
    /// or invariant-violating, or when its compiled index diverges.
    pub fn load(&mut self, name: &str) -> Result<&StructureHandle, MpsError> {
        let served = ServedStructure::open(name, self.artifact_path(name))?;
        self.handles.insert(name.to_owned(), Arc::new(served));
        Ok(self.handles[name].as_ref())
    }

    /// Generates a structure for `name` under `config` (regardless of
    /// any existing artifact), persists it, and compiles its handle.
    ///
    /// # Errors
    ///
    /// [`MpsError::Generate`] on invalid circuits, [`MpsError::Persist`]
    /// when the artifact cannot be written, [`MpsError::Serve`] when the
    /// compiled index diverges.
    pub fn generate(
        &mut self,
        name: &str,
        circuit: &Circuit,
        config: GeneratorConfig,
    ) -> Result<(&StructureHandle, GenerationReport), MpsError> {
        let (mps, report) = MpsGenerator::new(circuit, config).generate_with_report()?;
        let handle = self.install(name, mps)?;
        Ok((handle, report))
    }

    /// Adopts an already-generated structure under `name`: persists it
    /// and compiles its handle (the bridge for structures produced
    /// outside the workspace).
    ///
    /// # Errors
    ///
    /// [`MpsError::Persist`] when the artifact cannot be written,
    /// [`MpsError::Serve`] when the compiled index diverges.
    pub fn adopt(
        &mut self,
        name: &str,
        mps: MultiPlacementStructure,
    ) -> Result<&StructureHandle, MpsError> {
        self.install(name, mps)
    }

    /// Persists `mps` to the artifact path, compiles + cross-checks the
    /// handle, and installs it.
    fn install(
        &mut self,
        name: &str,
        mps: MultiPlacementStructure,
    ) -> Result<&StructureHandle, MpsError> {
        mps.save_json(self.artifact_path(name))?;
        let served = ServedStructure::try_from_structure(name, mps)?;
        self.handles.insert(name.to_owned(), Arc::new(served));
        Ok(self.handles[name].as_ref())
    }

    /// Re-anneals a region of dims-space for `name` and installs the
    /// result — the facade over [`mps_core::refine_region`], the same
    /// entry point `mps-serve`'s traffic-adaptive refinement worker
    /// drives from live heatmaps. Here the caller names the region
    /// (one [`BlockRanges`] per block, each inside the structure's
    /// designer bounds); the deterministic multi-start walks explore
    /// it under `config`, the merged structure passes the full
    /// invariant battery, and — exactly like [`Workspace::generate`] —
    /// the winner is persisted (atomically) and recompiled before it
    /// replaces the live handle. Entries outside the region are
    /// untouched, so existing answers elsewhere are preserved.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownStructure`] for unknown names,
    /// [`MpsError::Refine`] on a malformed region (wrong arity, outside
    /// bounds) or when the merged structure fails the invariant
    /// battery, [`MpsError::Persist`]/[`MpsError::Serve`] when the
    /// refined artifact cannot be written or its compiled index
    /// diverges.
    pub fn refine(
        &mut self,
        name: &str,
        region: &[BlockRanges],
        config: GeneratorConfig,
    ) -> Result<(&StructureHandle, RefineReport), MpsError> {
        let (refined, report) = refine_region(self.handle(name)?.structure(), region, &config)?;
        let handle = self.install(name, refined)?;
        Ok((handle, report))
    }

    /// Re-persists the live handle for `name` (after an external edit of
    /// the artifact directory, or to repair a deleted file).
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownStructure`] for unknown names,
    /// [`MpsError::Persist`] when the file cannot be written.
    pub fn save(&self, name: &str) -> Result<PathBuf, MpsError> {
        let handle = self.handle(name)?;
        let path = self.artifact_path(name);
        handle.structure().save_json(&path)?;
        Ok(path)
    }

    /// Answers one typed query through the compiled plan — bit-identical
    /// to the structure's own interpretive path (the handle cross-checked
    /// that at construction).
    ///
    /// `Ok(None)` means the vector is in-arity but uncovered (or outside
    /// the designer bounds) — exactly the structure's `query` semantics.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownStructure`] for unknown names,
    /// [`QueryError::BadArity`] on arity mismatch.
    pub fn query(&self, name: &str, dims: &Dims) -> Result<Option<PlacementId>, MpsError> {
        let handle = self.handle(name)?;
        self.check_arity(handle, dims)?;
        Ok(handle.index().query(dims))
    }

    /// Answers a whole stream through one compiled scratch buffer;
    /// element `k` equals `self.query(name, &queries[k])`.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownStructure`] for unknown names,
    /// [`QueryError::BadArity`] on the first arity mismatch.
    pub fn query_batch(
        &self,
        name: &str,
        queries: &[Dims],
    ) -> Result<Vec<Option<PlacementId>>, MpsError> {
        let handle = self.handle(name)?;
        for dims in queries {
            self.check_arity(handle, dims)?;
        }
        Ok(handle.index().query_batch(queries))
    }

    /// Materializes the placement for `dims`, falling back to the backup
    /// packing in uncovered space — the synthesis-loop entry point.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownStructure`] for unknown names,
    /// [`QueryError::BadArity`] on arity mismatch, and
    /// [`QueryError::OutOfBounds`] when a pair escapes the designer
    /// bounds (the fallback packing guarantees legality only inside
    /// them) — the same refusals the `mps-serve` protocol makes.
    pub fn instantiate(&self, name: &str, dims: &Dims) -> Result<Placement, MpsError> {
        let handle = self.handle(name)?;
        self.check_arity(handle, dims)?;
        for (block, (&pair, b)) in dims.iter().zip(handle.structure().bounds()).enumerate() {
            if !b.w.contains(pair.0) || !b.h.contains(pair.1) {
                return Err(QueryError::OutOfBounds {
                    structure: name.into(),
                    block,
                    dims: pair,
                }
                .into());
            }
        }
        // One compiled lookup decides both id and placement; only
        // uncovered space falls through to the structure's fallback path
        // (the same dispatch the server performs).
        let placement = match handle
            .index()
            .query(dims)
            .and_then(|id| handle.structure().entry(id))
        {
            Some(entry) => entry.placement.clone(),
            None => handle.structure().instantiate_or_fallback(dims),
        };
        Ok(placement)
    }

    /// Opens the workspace directory as a hot-swappable serving
    /// registry: every persisted artifact is re-validated, compiled and
    /// cross-checked, ready to put behind a [`mps_serve::Server`].
    ///
    /// # Errors
    ///
    /// [`MpsError::Serve`] when the scan or any artifact load fails.
    pub fn serve_registry(&self) -> Result<StructureRegistry, MpsError> {
        Ok(StructureRegistry::open(&self.dir)?)
    }

    /// Opens the workspace directory as a ready-to-pump [`Server`]:
    /// [`Workspace::serve_registry`] plus the serving knobs — worker
    /// pool size, the sharded LRU answer cache (capacity / shard
    /// count; `cache_entries` 0 disables caching) and the telemetry
    /// layer (`telemetry`, default on: per-stage latency histograms,
    /// query-dimension heatmaps and the slow-request ring behind the
    /// `metrics`/`trace` protocol requests). The returned server
    /// speaks the full `mps-serve` protocol (pipelined tagged requests,
    /// `reload` hot-swaps with all-or-nothing cache invalidation) over
    /// any `BufRead`/`Write` pair or a TCP listener.
    ///
    /// ```no_run
    /// # fn main() -> Result<(), analog_mps::api::MpsError> {
    /// use analog_mps::api::{ServerConfig, Workspace};
    /// let ws = Workspace::open("out/structures")?;
    /// let server = std::sync::Arc::new(ws.serve_server(ServerConfig {
    ///     workers: 4,
    ///     cache_entries: 65_536,
    ///     cache_shards: 16,
    ///     ..ServerConfig::default()
    /// })?);
    /// let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    /// server.serve_tcp(listener); // accepts connections forever
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`MpsError::Serve`] when the scan or any artifact load fails.
    pub fn serve_server(&self, config: ServerConfig) -> Result<Server, MpsError> {
        let registry = self.serve_registry()?;
        Ok(Server::with_config(Arc::new(registry), config))
    }

    fn check_arity(&self, handle: &ServedStructure, dims: &Dims) -> Result<(), MpsError> {
        let expected = handle.structure().block_count();
        if dims.arity() != expected {
            return Err(QueryError::BadArity {
                structure: handle.name().to_owned(),
                expected,
                got: dims.arity(),
            }
            .into());
        }
        Ok(())
    }

    fn unknown(&self, name: &str) -> MpsError {
        QueryError::UnknownStructure {
            name: name.to_owned(),
            available: self.names(),
        }
        .into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_core::GeneratorConfig;
    use mps_netlist::benchmarks;

    fn temp_ws(tag: &str) -> Workspace {
        let dir = std::env::temp_dir().join(format!("mps_api_ws_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Workspace::open(dir).unwrap()
    }

    fn quick_config(seed: u64) -> GeneratorConfig {
        GeneratorConfig::builder()
            .outer_iterations(30)
            .inner_iterations(30)
            .seed(seed)
            .build()
    }

    #[test]
    fn generate_then_load_roundtrip() {
        let mut ws = temp_ws("roundtrip");
        let circuit = benchmarks::circ01();
        let (_, source) = ws
            .generate_or_load("circ01", &circuit, quick_config(1))
            .unwrap();
        assert!(matches!(source, ArtifactSource::Generated(_)));
        assert!(ws.artifact_path("circ01").is_file(), "generation persists");

        // A second resolution loads instead of regenerating.
        let mut ws2 = Workspace::open(ws.dir()).unwrap();
        let (_, source) = ws2
            .generate_or_load("circ01", &circuit, quick_config(999))
            .unwrap();
        assert!(matches!(source, ArtifactSource::Loaded(_)));
        assert_eq!(ws2.names(), vec!["circ01"]);

        // Both sessions answer identically.
        let dims = circuit.min_dims();
        assert_eq!(
            ws.query("circ01", &dims).unwrap(),
            ws2.query("circ01", &dims).unwrap()
        );
        let _ = std::fs::remove_dir_all(ws.dir());
    }

    #[test]
    fn typed_refusals() {
        let mut ws = temp_ws("refusals");
        let circuit = benchmarks::circ01();
        ws.generate_or_load("circ01", &circuit, quick_config(2))
            .unwrap();

        let err = ws.query("nope", &circuit.min_dims()).unwrap_err();
        assert!(matches!(
            err,
            MpsError::Query(QueryError::UnknownStructure { .. })
        ));

        let err = ws.query("circ01", &mps_geom::dims![(10, 10)]).unwrap_err();
        assert!(matches!(err, MpsError::Query(QueryError::BadArity { .. })));

        let mut out = circuit.min_dims().into_vec();
        out[0].0 = 1_000_000;
        let err = ws
            .instantiate("circ01", &Dims::from_vec_unchecked(out))
            .unwrap_err();
        assert!(matches!(
            err,
            MpsError::Query(QueryError::OutOfBounds { .. })
        ));
        let _ = std::fs::remove_dir_all(ws.dir());
    }

    #[test]
    fn circuit_mismatch_is_detected() {
        let mut ws = temp_ws("mismatch");
        let circuit = benchmarks::circ01();
        ws.generate_or_load("shared", &circuit, quick_config(3))
            .unwrap();
        let other = benchmarks::circ02();
        let err = ws
            .generate_or_load("shared", &other, quick_config(3))
            .unwrap_err();
        assert!(matches!(
            err,
            MpsError::Query(QueryError::CircuitMismatch { .. })
        ));
        // The rejected artifact must not have replaced the live handle:
        // the original circ01 structure keeps answering.
        assert_eq!(
            ws.handle("shared").unwrap().structure().bounds(),
            circuit.dim_bounds()
        );
        assert!(ws.query("shared", &circuit.min_dims()).is_ok());
        let _ = std::fs::remove_dir_all(ws.dir());
    }

    #[test]
    fn serve_registry_spans_the_workspace() {
        let mut ws = temp_ws("registry");
        let c1 = benchmarks::circ01();
        let c2 = benchmarks::circ02();
        ws.generate_or_load("circ01", &c1, quick_config(4)).unwrap();
        ws.generate_or_load("circ02", &c2, quick_config(5)).unwrap();
        let registry = ws.serve_registry().unwrap();
        assert_eq!(registry.names(), vec!["circ01", "circ02"]);
        // Registry answers match workspace answers (both compiled).
        let dims = c2.min_dims();
        assert_eq!(
            registry.get("circ02").unwrap().index().query(&dims),
            ws.query("circ02", &dims).unwrap()
        );
        let _ = std::fs::remove_dir_all(ws.dir());
    }

    #[test]
    fn serve_server_applies_cache_knobs() {
        let mut ws = temp_ws("server");
        let circuit = benchmarks::circ01();
        ws.generate_or_load("circ01", &circuit, quick_config(9))
            .unwrap();
        let server = ws
            .serve_server(ServerConfig {
                workers: 1,
                cache_entries: 32,
                cache_shards: 2,
                ..ServerConfig::default()
            })
            .unwrap();
        let dims = circuit.min_dims();
        let pairs: Vec<String> = dims.iter().map(|(w, h)| format!("[{w},{h}]")).collect();
        let line = format!(
            r#"{{"kind":"query","structure":"circ01","dims":[{}]}}"#,
            pairs.join(",")
        );
        let first = server.handle_line(&line).unwrap();
        let second = server.handle_line(&line).unwrap();
        assert_eq!(first, second, "cache hit replays the identical answer");
        let stats = server.cache().stats();
        assert_eq!((stats.hits, stats.capacity), (1, 32));
        // cache_entries 0 turns the cache off entirely.
        let uncached = ws
            .serve_server(ServerConfig {
                workers: 1,
                cache_entries: 0,
                cache_shards: 2,
                ..ServerConfig::default()
            })
            .unwrap();
        assert!(!uncached.cache().enabled());
        let _ = std::fs::remove_dir_all(ws.dir());
    }

    #[test]
    fn refine_improves_a_region_and_persists_the_result() {
        let mut ws = temp_ws("refine");
        let circuit = benchmarks::circ01();
        ws.generate_or_load("circ01", &circuit, quick_config(7))
            .unwrap();
        let before = ws.handle("circ01").unwrap().structure().clone();
        // The low quarter of every axis — the kind of region the serve
        // worker would pick from a concentrated heatmap.
        let region: Vec<mps_geom::BlockRanges> = before
            .bounds()
            .iter()
            .map(|b| {
                let quarter = |i: &mps_geom::Interval| {
                    mps_geom::Interval::new(i.lo(), i.lo() + (i.len() as i64 - 1) / 4)
                };
                mps_geom::BlockRanges::new(quarter(&b.w), quarter(&b.h))
            })
            .collect();
        let (_, report) = ws.refine("circ01", &region, quick_config(8)).unwrap();
        assert!(report.inserted_boxes > 0, "{report:?}");
        let after = ws.handle("circ01").unwrap();
        after.structure().check_invariants().unwrap();
        assert_ne!(after.structure().to_json(), before.to_json());
        // The refined artifact was persisted: a fresh session loads the
        // refined structure, bit-identical.
        let mut ws2 = Workspace::open(ws.dir()).unwrap();
        ws2.load("circ01").unwrap();
        assert_eq!(
            ws2.handle("circ01").unwrap().structure().to_json(),
            after.structure().to_json()
        );
        // A malformed region (outside the designer bounds) is a typed
        // refusal, and the live handle is untouched.
        let bad = vec![
            mps_geom::BlockRanges::new(
                mps_geom::Interval::new(0, 1_000_000),
                mps_geom::Interval::new(0, 1_000_000),
            );
            before.block_count()
        ];
        let err = ws.refine("circ01", &bad, quick_config(8)).unwrap_err();
        assert!(matches!(err, MpsError::Refine(_)), "{err}");
        let _ = std::fs::remove_dir_all(ws.dir());
    }

    #[test]
    fn save_repairs_a_deleted_artifact() {
        let mut ws = temp_ws("save");
        let circuit = benchmarks::circ01();
        ws.generate_or_load("circ01", &circuit, quick_config(6))
            .unwrap();
        std::fs::remove_file(ws.artifact_path("circ01")).unwrap();
        let path = ws.save("circ01").unwrap();
        assert!(path.is_file());
        let _ = std::fs::remove_dir_all(ws.dir());
    }
}
