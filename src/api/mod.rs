//! The unified facade: typed dimension vectors, one error type, and a
//! session [`Workspace`] spanning generate → persist → compile → serve.
//!
//! The lower crates stay precise — `mps-core` speaks
//! [`GenerateError`](mps_core::GenerateError) /
//! [`PersistError`](mps_core::PersistError), `mps-serve` speaks
//! [`ServeError`](mps_serve::ServeError) — and this module is where they
//! compose: every public fallible function here returns
//! `Result<_, `[`MpsError`]`>`, every dimension vector is a typed
//! [`Dims`], and the [`Workspace`] owns the whole artifact lifecycle
//! that bench binaries and applications previously re-stitched by hand.
//!
//! # Migration from the raw APIs
//!
//! | Old (PR ≤ 3)                                        | New                                            |
//! |-----------------------------------------------------|------------------------------------------------|
//! | `mps.query(&[(w, h), ...])`                         | `mps.query(&dims![(w, h), ...])`               |
//! | `mps.query(&raw_slice)` (kept one release)          | `mps.query_pairs(&raw_slice)` *(deprecated)*   |
//! | `mps.query_with_scratch(&raw, &mut s)`              | `mps.query_with_scratch_pairs(...)` *(deprecated)* |
//! | `check_invariants() -> Result<(), String>`          | `-> Result<(), InvariantError>`                |
//! | `MpsGenerator` + `save_json` + `load_json` by hand  | [`Workspace::generate_or_load`]                |
//! | `CompiledQueryIndex::build` + `verify_against`      | automatic behind every [`Workspace`] handle    |
//! | `StructureRegistry::open(dir)`                      | [`Workspace::serve_registry`]                  |
//! | `GenerateError` / `PersistError` / `ServeError` / `String` | one [`MpsError`] with `From` impls       |
//!
//! [`Dims`]: mps_geom::Dims

mod error;
mod workspace;

pub use error::{MpsError, QueryError};
pub use mps_serve::ServerConfig;
pub use workspace::{ArtifactSource, StructureHandle, Workspace};
