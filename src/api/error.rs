//! The unified error hierarchy of the facade.
//!
//! Every stage of the workflow has its own precise error type —
//! [`GenerateError`] from generation, [`PersistError`] from the `mps-v1`
//! envelope, [`InvariantError`] from the Eq.-5 battery, [`ServeError`]
//! from the registry — and code composing the stages used to juggle all
//! of them. [`MpsError`] is the sum type the facade speaks: every public
//! fallible function in [`crate::api`] returns `Result<_, MpsError>`,
//! and `From` impls from each stage error make `?` compose across the
//! whole generate → persist → compile → serve pipeline.

use mps_core::{GenerateError, InvariantError, PersistError, RefineError};
use mps_geom::{Coord, DimsError};
use mps_serve::ServeError;
use std::fmt;

/// Why a facade query or instantiation was refused before it ever
/// reached a structure.
#[derive(Debug)]
pub enum QueryError {
    /// The dimension vector itself is malformed (empty, non-positive
    /// sizes).
    InvalidDims(DimsError),
    /// The vector's arity differs from the structure's block count.
    BadArity {
        /// The addressed structure.
        structure: String,
        /// The structure's block count.
        expected: usize,
        /// The vector's arity.
        got: usize,
    },
    /// A dimension pair escapes the structure's designer bounds (only
    /// instantiation rejects this — the fallback packing guarantees
    /// legality only inside the bounds; queries answer `None`).
    OutOfBounds {
        /// The addressed structure.
        structure: String,
        /// The offending block index.
        block: usize,
        /// The offending `(w, h)` pair.
        dims: (Coord, Coord),
    },
    /// No structure of that name in the workspace.
    UnknownStructure {
        /// The requested name.
        name: String,
        /// The names actually available.
        available: Vec<String>,
    },
    /// A loaded artifact belongs to a different circuit than the one the
    /// caller is working with (dimension bounds differ).
    CircuitMismatch {
        /// The artifact's workspace name.
        name: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::InvalidDims(e) => write!(f, "invalid dimension vector: {e}"),
            QueryError::BadArity {
                structure,
                expected,
                got,
            } => write!(
                f,
                "structure `{structure}` covers {expected} blocks, got {got} dimension pairs"
            ),
            QueryError::OutOfBounds {
                structure,
                block,
                dims: (w, h),
            } => write!(
                f,
                "block {block} dimensions ({w}, {h}) escape the designer bounds of \
                 structure `{structure}`"
            ),
            QueryError::UnknownStructure { name, available } => write!(
                f,
                "no structure `{name}` in the workspace (available: {})",
                available.join(", ")
            ),
            QueryError::CircuitMismatch { name } => write!(
                f,
                "structure `{name}` was generated for a different circuit \
                 (dimension bounds differ)"
            ),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::InvalidDims(e) => Some(e),
            _ => None,
        }
    }
}

/// The one error type of the `analog_mps` facade.
///
/// One variant per pipeline stage, each wrapping that stage's precise
/// error; `From` impls let `?` lift any stage error into an `MpsError`,
/// so application code handles one type end to end:
///
/// ```
/// use analog_mps::api::MpsError;
///
/// fn stage() -> Result<(), MpsError> {
///     let circuit = analog_mps::netlist::benchmarks::circ01();
///     let config = analog_mps::mps::GeneratorConfig::builder()
///         .outer_iterations(20)
///         .build();
///     // GenerateError lifts via From:
///     let mps = analog_mps::mps::MpsGenerator::new(&circuit, config).generate()?;
///     // InvariantError lifts via From:
///     mps.check_invariants()?;
///     Ok(())
/// }
/// # stage().unwrap();
/// ```
#[derive(Debug)]
pub enum MpsError {
    /// One-time structure generation failed.
    Generate(GenerateError),
    /// Loading or saving an `mps-v1` artifact failed.
    Persist(PersistError),
    /// A structure violates the Eq.-5 invariant battery.
    Invariant(InvariantError),
    /// A query/instantiation was refused (bad dims, arity, bounds,
    /// unknown name, circuit mismatch).
    Query(QueryError),
    /// The serving layer refused (directory scan, artifact load,
    /// compiled-index divergence, duplicate names).
    Serve(ServeError),
    /// A region refinement pass was refused (malformed region, or the
    /// merged result failed the invariant battery).
    Refine(RefineError),
}

impl fmt::Display for MpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpsError::Generate(e) => write!(f, "generation failed: {e}"),
            MpsError::Persist(e) => write!(f, "persistence failed: {e}"),
            MpsError::Invariant(e) => write!(f, "invariant violated: {e}"),
            MpsError::Query(e) => write!(f, "query refused: {e}"),
            MpsError::Serve(e) => write!(f, "serving failed: {e}"),
            MpsError::Refine(e) => write!(f, "refinement refused: {e}"),
        }
    }
}

impl std::error::Error for MpsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpsError::Generate(e) => Some(e),
            MpsError::Persist(e) => Some(e),
            MpsError::Invariant(e) => Some(e),
            MpsError::Query(e) => Some(e),
            MpsError::Serve(e) => Some(e),
            MpsError::Refine(e) => Some(e),
        }
    }
}

impl From<GenerateError> for MpsError {
    fn from(e: GenerateError) -> Self {
        MpsError::Generate(e)
    }
}

impl From<PersistError> for MpsError {
    fn from(e: PersistError) -> Self {
        MpsError::Persist(e)
    }
}

impl From<InvariantError> for MpsError {
    fn from(e: InvariantError) -> Self {
        MpsError::Invariant(e)
    }
}

impl From<QueryError> for MpsError {
    fn from(e: QueryError) -> Self {
        MpsError::Query(e)
    }
}

impl From<DimsError> for MpsError {
    fn from(e: DimsError) -> Self {
        MpsError::Query(QueryError::InvalidDims(e))
    }
}

impl From<ServeError> for MpsError {
    fn from(e: ServeError) -> Self {
        MpsError::Serve(e)
    }
}

impl From<RefineError> for MpsError {
    fn from(e: RefineError) -> Self {
        MpsError::Refine(e)
    }
}

/// File I/O at the facade seam is persistence I/O.
impl From<std::io::Error> for MpsError {
    fn from(e: std::io::Error) -> Self {
        MpsError::Persist(PersistError::Io(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_impls_pick_the_right_variant() {
        let e: MpsError = DimsError::Empty.into();
        assert!(matches!(e, MpsError::Query(QueryError::InvalidDims(_))));
        let e: MpsError = std::io::Error::other("boom").into();
        assert!(matches!(e, MpsError::Persist(PersistError::Io(_))));
        let e: MpsError = mps_core::InvariantError::IllegalPlacement {
            id: mps_core::PlacementId(0),
        }
        .into();
        assert!(matches!(e, MpsError::Invariant(_)));
    }

    #[test]
    fn display_is_prefixed_by_stage() {
        let e: MpsError = DimsError::Empty.into();
        assert!(e.to_string().starts_with("query refused:"), "{e}");
        let source = std::error::Error::source(&e);
        assert!(source.is_some(), "stage error preserved as source");
    }
}
